"""Harmonic-oscillator single-particle states.

A 3-D HO shell with ``N`` quanta contains orbital angular momenta
``l = N, N-2, ..., (0 or 1)``; spin-orbit coupling splits each ``l`` into
``j = l ± 1/2`` (only ``+`` for ``l = 0``), and each ``j`` carries
``2j + 1`` magnetic substates.  The shell therefore holds
``(N + 1)(N + 2)`` single-particle states, and parity is ``(-1)^N``.

States store twice-j and twice-m so everything stays integral.
"""

from __future__ import annotations

from dataclasses import dataclass
from functools import lru_cache


@dataclass(frozen=True)
class SPState:
    """One HO single-particle state |n l j m> (jj-coupled, one species)."""

    n: int       # radial quantum number
    l: int       # orbital angular momentum
    jj: int      # 2j (odd)
    mm: int      # 2m_j (odd, |mm| <= jj)

    def __post_init__(self) -> None:
        if self.n < 0 or self.l < 0:
            raise ValueError("n and l must be non-negative")
        if self.jj not in (2 * self.l - 1, 2 * self.l + 1) or self.jj < 1:
            raise ValueError(f"j={self.jj}/2 incompatible with l={self.l}")
        if abs(self.mm) > self.jj or (self.mm - self.jj) % 2 != 0:
            raise ValueError(f"m={self.mm}/2 invalid for j={self.jj}/2")

    @property
    def quanta(self) -> int:
        """HO quanta N = 2n + l."""
        return 2 * self.n + self.l

    @property
    def parity(self) -> int:
        return -1 if self.l % 2 else 1


def ho_shell_states(N: int) -> list[SPState]:
    """All single-particle states of the shell with ``N`` quanta."""
    if N < 0:
        raise ValueError("shell number must be non-negative")
    out: list[SPState] = []
    for l in range(N % 2, N + 1, 2):
        n = (N - l) // 2
        for jj in ([2 * l + 1] if l == 0 else [2 * l - 1, 2 * l + 1]):
            for mm in range(-jj, jj + 1, 2):
                out.append(SPState(n=n, l=l, jj=jj, mm=mm))
    assert len(out) == (N + 1) * (N + 2)
    return out


@lru_cache(maxsize=64)
def ho_states_up_to(N_max: int) -> tuple[SPState, ...]:
    """All states with quanta <= ``N_max``, shell-ordered (cached)."""
    out: list[SPState] = []
    for N in range(N_max + 1):
        out.extend(ho_shell_states(N))
    return tuple(out)


def shell_size(N: int) -> int:
    return (N + 1) * (N + 2)


def cumulative_states(N_max: int) -> int:
    """Number of sp states with quanta <= N_max: (N+1)(N+2)(N+3)/3."""
    return (N_max + 1) * (N_max + 2) * (N_max + 3) // 3


def minimal_quanta(particles: int) -> int:
    """Total HO quanta of the lowest Pauli-allowed configuration of one
    species: fill shells bottom-up."""
    if particles < 0:
        raise ValueError("particle number must be non-negative")
    total = 0
    remaining = particles
    shell = 0
    while remaining > 0:
        take = min(remaining, shell_size(shell))
        total += take * shell
        remaining -= take
        shell += 1
    return total
