"""Configuration-interaction model of the nuclear structure problem.

Section II of the paper motivates the out-of-core system with *ab initio*
no-core CI calculations: the Hamiltonian is expanded in an M-scheme basis
of Slater determinants of harmonic-oscillator (HO) single-particle states,
truncated by the total number of HO quanta above the minimal configuration
(``Nmax``) and the total magnetic projection (``Mj``).

* :mod:`repro.ci.ho_basis` — HO single-particle states (n, l, j, m);
* :mod:`repro.ci.mscheme` — exact basis-dimension counting by dynamic
  programming over single-particle states (regenerates Table I's D), plus
  uniform sampling of basis determinants from the DP tables;
* :mod:`repro.ci.nnz` — a stochastic estimator of the Hamiltonian's
  nonzero count under a 2-body interaction (at most two single-particle
  substitutions between connected determinants);
* :mod:`repro.ci.cases` — the ¹⁰B parameter sets of Table I with the
  published values for comparison.
"""

from repro.ci.ho_basis import SPState, ho_shell_states, ho_states_up_to
from repro.ci.mscheme import MSchemeSpace, SpeciesCounter
from repro.ci.nnz import estimate_row_nnz, estimate_total_nnz
from repro.ci.cases import TABLE1_CASES, Table1Case

__all__ = [
    "SPState",
    "ho_shell_states",
    "ho_states_up_to",
    "MSchemeSpace",
    "SpeciesCounter",
    "estimate_row_nnz",
    "estimate_total_nnz",
    "TABLE1_CASES",
    "Table1Case",
]
