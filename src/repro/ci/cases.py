"""The ¹⁰B calculations of Table I, with the paper's published values.

¹⁰B has 5 protons and 5 neutrons.  The published local sizes follow MFDn's
2-D triangular processor decomposition: ``np = n(n+1)/2`` processors, local
Lanczos vectors of ``4 D / n`` bytes (single-precision vectors on the ``n``
diagonal processors), local matrix of ``~8 nnz / np`` bytes (4-byte value +
4-byte index per stored element).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.ci.mscheme import MSchemeSpace


@dataclass(frozen=True)
class Table1Case:
    """One row of Table I."""

    name: str
    nmax: int
    mj: int
    published_dimension: int
    published_nnz: float
    published_processors: int
    published_v_local_mb: float
    published_h_local_mb: float

    def space(self) -> MSchemeSpace:
        return MSchemeSpace(protons=5, neutrons=5, nmax=self.nmax,
                            mj2=2 * self.mj)

    @property
    def diag_processors(self) -> int:
        """n with n(n+1)/2 = published processor count."""
        n = int((2 * self.published_processors) ** 0.5)
        while n * (n + 1) // 2 < self.published_processors:
            n += 1
        if n * (n + 1) // 2 != self.published_processors:
            raise ValueError(
                f"{self.published_processors} is not a triangular number"
            )
        return n

    def v_local_bytes(self, dimension: int | None = None) -> float:
        """Modelled local Lanczos vector size (single precision)."""
        d = self.published_dimension if dimension is None else dimension
        return 4.0 * d / self.diag_processors

    def h_local_bytes(self, nnz: float | None = None) -> float:
        """Modelled local matrix size (value + column index per element)."""
        z = self.published_nnz if nnz is None else nnz
        return 8.0 * z / self.published_processors


TABLE1_CASES: tuple[Table1Case, ...] = (
    Table1Case("test276", nmax=7, mj=0,
               published_dimension=int(4.66e7), published_nnz=2.81e10,
               published_processors=276,
               published_v_local_mb=8.8, published_h_local_mb=880.0),
    Table1Case("test1128", nmax=8, mj=1,
               published_dimension=int(1.60e8), published_nnz=1.24e11,
               published_processors=1128,
               published_v_local_mb=13.6, published_h_local_mb=880.0),
    Table1Case("test4560", nmax=9, mj=2,
               published_dimension=int(4.82e8), published_nnz=4.62e11,
               published_processors=4560,
               published_v_local_mb=20.4, published_h_local_mb=800.0),
    Table1Case("test18336", nmax=10, mj=3,
               published_dimension=int(1.30e9), published_nnz=1.51e12,
               published_processors=18336,
               published_v_local_mb=27.2, published_h_local_mb=750.0),
)


def triangular_processor_count(min_processors: float) -> int:
    """Smallest triangular number >= min_processors (MFDn's grid shape)."""
    if min_processors <= 1:
        return 1
    n = 1
    while n * (n + 1) // 2 < min_processors:
        n += 1
    return n * (n + 1) // 2


def required_processors(dimension: int, nnz: float,
                        *, mem_bytes_per_proc: float = 0.98e9,
                        vector_copies: int = 12) -> int:
    """Minimum triangular processor count fitting the matrix in memory.

    Memory per processor: the local matrix slice (8 bytes per stored
    element) plus ``vector_copies`` distributed single-precision vectors
    (Lanczos working set).  Calibrated against Table I; see tests.
    """
    np_guess = 1
    while True:
        np_guess = triangular_processor_count(np_guess)
        n = int((2 * np_guess) ** 0.5)
        while n * (n + 1) // 2 < np_guess:
            n += 1
        h_local = 8.0 * nnz / np_guess
        v_local = 4.0 * dimension / n
        if h_local + vector_copies * v_local <= mem_bytes_per_proc:
            return np_guess
        np_guess += 1
