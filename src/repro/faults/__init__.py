"""Deterministic fault injection and retry policy.

Long Lanczos runs (the paper's target workload) see transient I/O errors,
lost peer messages and crashed workers long before they see a clean
shutdown.  The write-once/immutable-array semantics of the storage layer
(Section III-B) make recovery unusually cheap: no coherency state exists
to repair, so a failed task can simply be re-executed — the same property
iterative-dataflow systems exploit for low-cost recovery.

This package provides the *one* fault schema shared by the threaded
engine and the DES testbed:

* :class:`FaultPlan` — a pure, seed-keyed description of which faults
  occur.  Every decision is a deterministic hash of (seed, site), so the
  same plan replays the same faults regardless of thread interleaving;
* :class:`RetryPolicy` — exponential backoff with jitter, used by the
  I/O filters (real sleeps) and the simulator (sim-clock timeouts);
* :class:`FaultInjector` — a per-node binding of a plan that counts
  ``faults_injected`` into the node's metrics registry and traces every
  injection.

See docs/FAULTS.md for the fault model and recovery semantics.
"""

from repro.faults.plan import (
    FaultInjector,
    FaultPlan,
    InjectedIOError,
    InjectedTaskCrash,
    RetryPolicy,
    job_fault_plan,
)

__all__ = [
    "FaultPlan",
    "FaultInjector",
    "RetryPolicy",
    "InjectedIOError",
    "InjectedTaskCrash",
    "job_fault_plan",
]
