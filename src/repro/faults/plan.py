"""The fault schema: plans, retry policy, and the per-node injector."""

from __future__ import annotations

import random
from dataclasses import dataclass, replace

from repro.util.rng import _digest_seed

__all__ = [
    "FaultPlan",
    "FaultInjector",
    "RetryPolicy",
    "InjectedIOError",
    "InjectedTaskCrash",
    "job_fault_plan",
]

_U53 = float(1 << 53)


class InjectedIOError(OSError):
    """A FaultPlan-injected I/O failure (transient or permanent)."""


class InjectedTaskCrash(RuntimeError):
    """A FaultPlan-injected worker-task crash."""


@dataclass(frozen=True)
class RetryPolicy:
    """Exponential backoff with jitter for transient-failure retries.

    ``attempts`` counts total tries (1 disables retries).  The delay before
    try ``k`` (k >= 1) is ``backoff_s * multiplier**(k-1)`` capped at
    ``max_backoff_s``, scaled by a uniform factor in
    ``[1 - jitter, 1 + jitter]`` when an ``rng`` is supplied.
    """

    attempts: int = 4
    backoff_s: float = 0.002
    multiplier: float = 2.0
    max_backoff_s: float = 0.25
    jitter: float = 0.5

    def __post_init__(self) -> None:
        if self.attempts < 1:
            raise ValueError("attempts must be >= 1")
        if self.backoff_s < 0 or self.max_backoff_s < 0:
            raise ValueError("backoff delays must be non-negative")
        if self.multiplier < 1.0:
            raise ValueError("multiplier must be >= 1")
        if not 0.0 <= self.jitter < 1.0:
            raise ValueError("jitter must be in [0, 1)")

    def delay(self, attempt: int, rng: random.Random | None = None) -> float:
        """Seconds to wait before retry ``attempt`` (1-based)."""
        if attempt < 1:
            raise ValueError("attempt must be >= 1")
        base = min(self.backoff_s * self.multiplier ** (attempt - 1),
                   self.max_backoff_s)
        if rng is None or self.jitter == 0.0:
            return base
        return base * (1.0 + self.jitter * (2.0 * rng.random() - 1.0))


@dataclass(frozen=True)
class FaultPlan:
    """A deterministic description of which faults a run experiences.

    Each probability is evaluated as a pure hash of ``(seed, site)``, so a
    given plan always injects the same faults at the same decision sites —
    independent of thread scheduling.  Transient I/O faults are keyed per
    *attempt* (a retry re-draws); permanent faults are keyed per site only
    (every attempt fails); peer faults are keyed per occurrence (a
    retransmitted message re-draws).
    """

    seed: int = 0
    #: P(one attempt of an I/O operation fails with a retryable error)
    io_transient: float = 0.0
    #: P(an I/O site — (node, op, array, block) — fails on every attempt)
    io_permanent: float = 0.0
    #: P(a peer message silently vanishes)
    peer_drop: float = 0.0
    #: P(a peer message is delayed by ``peer_delay_s``)
    peer_delay: float = 0.0
    peer_delay_s: float = 0.05
    #: P(one attempt of a worker task crashes mid-execution)
    task_crash: float = 0.0
    #: deterministic permanent node deaths: ``((node, after_tasks), ...)``.
    #: Each listed node dies — silently and forever — once its local
    #: scheduler has seen ``after_tasks`` task completions (and its
    #: in-flight work has drained, modelling a crash between tasks).
    node_kill: tuple[tuple[int, int], ...] = ()

    def __post_init__(self) -> None:
        for name in ("io_transient", "io_permanent", "peer_drop",
                     "peer_delay", "task_crash"):
            p = getattr(self, name)
            if not 0.0 <= p <= 1.0:
                raise ValueError(f"{name} must be a probability, got {p}")
        if self.peer_delay_s < 0:
            raise ValueError("peer_delay_s must be non-negative")
        kills = tuple((int(n), int(step)) for n, step in self.node_kill)
        if len({n for n, _ in kills}) != len(kills):
            raise ValueError("node_kill lists a node twice")
        for n, step in kills:
            if n < 0 or step < 0:
                raise ValueError(
                    f"node_kill entries must be non-negative, got ({n}, {step})")
        object.__setattr__(self, "node_kill", kills)

    @property
    def enabled(self) -> bool:
        return bool(self.node_kill) or any(
            (self.io_transient, self.io_permanent, self.peer_drop,
             self.peer_delay, self.task_crash))

    def kill_step(self, node: int) -> int | None:
        """Task-completion count after which ``node`` dies (None = never)."""
        for n, step in self.node_kill:
            if n == node:
                return step
        return None

    def _draw(self, *site: object) -> float:
        """Uniform [0, 1) determined purely by (seed, site)."""
        return (_digest_seed(self.seed, *site) >> 75) / _U53

    # -- decision points ------------------------------------------------------

    def io_fault(self, node: int, op: str, array: str, block: int,
                 attempt: int) -> str | None:
        """``"permanent"``, ``"transient"`` or None for one I/O attempt."""
        if self.io_permanent and self._draw(
                "io-perm", node, op, array, block) < self.io_permanent:
            return "permanent"
        if self.io_transient and self._draw(
                "io-trans", node, op, array, block, attempt) < self.io_transient:
            return "transient"
        return None

    def peer_fault(self, src: int, dst: int, op: str, array: str | None,
                   block: int, occurrence: int) -> tuple[str, float] | None:
        """``("drop", 0)``, ``("delay", s)`` or None for one peer message."""
        site = ("peer", src, dst, op, array, block, occurrence)
        if self.peer_drop and self._draw("drop", *site) < self.peer_drop:
            return ("drop", 0.0)
        if self.peer_delay and self._draw("delay", *site) < self.peer_delay:
            return ("delay", self.peer_delay_s)
        return None

    def task_fault(self, node: int, task: str, attempt: int) -> bool:
        """Does attempt ``attempt`` of ``task`` on ``node`` crash?"""
        return bool(self.task_crash and self._draw(
            "task", node, task, attempt) < self.task_crash)


def job_fault_plan(base: FaultPlan, job_id: str, attempt: int = 1) -> FaultPlan:
    """Derive a job's (attempt's) fault plan from a server-wide base plan.

    The job server runs many engines against one configured plan; giving
    every (job, attempt) pair its own derived seed keeps two properties
    the fault suites rely on: determinism (the same server seed and job
    id always replay the same faults — CI pins ``DOOC_FAULT_SEED``) and
    independence (a fault that hit job A's run says nothing about job B,
    and a *retry* of the same job re-draws instead of deterministically
    re-hitting the identical transient fault forever).
    """
    if attempt < 1:
        raise ValueError("attempt must be >= 1")
    derived = _digest_seed(base.seed, "job", job_id, attempt) & 0xFFFFFFFF
    return replace(base, seed=derived)


class FaultInjector:
    """A per-node binding of a :class:`FaultPlan`.

    Tracks per-message occurrence counters (so retransmissions re-draw),
    counts every injection into the node's metrics registry as
    ``faults_injected`` (labelled by kind), and traces each one.  All
    methods are called from the owning node's single-threaded filters.
    """

    def __init__(self, plan: FaultPlan, node: int, *, metrics=None,
                 tracer=None):
        self.plan = plan
        self.node = node
        self.metrics = metrics
        self.tracer = tracer
        self._peer_seq: dict[tuple, int] = {}

    def _record(self, kind: str, **args: object) -> None:
        if self.metrics is not None:
            self.metrics.inc("faults_injected", label=kind)
        if self.tracer is not None:
            self.tracer.instant(self.node, "faults", "fault", kind, **args)

    def io_fault(self, op: str, array: str, block: int,
                 attempt: int) -> str | None:
        kind = self.plan.io_fault(self.node, op, array, block, attempt)
        if kind is not None:
            self._record(f"io_{kind}", op=op, array=array, block=block,
                         attempt=attempt)
        return kind

    def peer_fault(self, dst: int, op: str, array: str | None,
                   block: int) -> tuple[str, float] | None:
        key = (dst, op, array, block)
        occurrence = self._peer_seq.get(key, 0)
        self._peer_seq[key] = occurrence + 1
        fate = self.plan.peer_fault(self.node, dst, op, array, block,
                                    occurrence)
        if fate is not None:
            self._record(f"peer_{fate[0]}", op=op, dst=dst, array=array,
                         block=block)
        return fate

    def task_fault(self, task: str, attempt: int) -> bool:
        hit = self.plan.task_fault(self.node, task, attempt)
        if hit:
            self._record("task_crash", task=task, attempt=attempt)
        return hit

    def kill_step(self) -> int | None:
        """This node's planned death point (task completions), if any."""
        return self.plan.kill_step(self.node)

    def record_node_kill(self, completed: int) -> None:
        """Account the planned death actually firing on this node."""
        self._record("node_kill", completed=completed)
