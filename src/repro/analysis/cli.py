"""``python -m repro lint`` — run the protocol-aware linter.

    python -m repro lint src
    python -m repro lint src tests --json
    python -m repro lint src --select DOOC001,DOOC002
    python -m repro lint tests --strict     # disable per-dir relaxations
    python -m repro lint src --deep         # + whole-program rules
    python -m repro lint src --deep --sarif lint.sarif
    python -m repro lint src --deep --write-baseline

Exit status: 0 clean, 1 violations found, 2 usage error.
"""

from __future__ import annotations

import argparse
import json
import os
import sys
import time
from pathlib import Path

from repro.analysis.lint import (
    DEEP_RULES,
    DEFAULT_PATH_RELAXATIONS,
    RULES,
    all_rules,
    lint_paths,
)


def _codes(raw: str | None) -> list[str] | None:
    if raw is None:
        return None
    return [c.strip().upper() for c in raw.split(",") if c.strip()]


def _rule_span() -> str:
    """The live rule range for the help text, derived from the registry
    so new rules can never drift the docs again."""
    codes = sorted(all_rules())
    return f"rules {codes[0]}..{codes[-1]}" if codes else "no rules"


def rule_table_markdown() -> str:
    """The docs/ANALYSIS.md rule table, generated from the registry."""
    lines = [
        "| Code | Name | Scope | What it catches |",
        "|------|------|-------|-----------------|",
        "| `DOOC000` | parse-error | file | File could not be parsed; "
        "nothing else was checked. |",
    ]
    for code, rule in sorted(all_rules().items()):
        scope = "program" if code in DEEP_RULES else "file"
        lines.append(f"| `{code}` | {rule.name} | {scope} "
                     f"| {rule.description} |")
    return "\n".join(lines) + "\n"


def _default_jobs() -> int:
    return min(8, os.cpu_count() or 1)


def main(argv: list[str] | None = None) -> int:
    # Importing the rule modules populates both registries; the help
    # text below is derived from them.
    import repro.analysis.rules  # noqa: F401
    import repro.analysis.flow.rules_deep  # noqa: F401

    parser = argparse.ArgumentParser(
        prog="python -m repro lint",
        description="Protocol-aware lint for the DOoC runtime "
                    f"({_rule_span()}; see docs/ANALYSIS.md).",
    )
    parser.add_argument("paths", nargs="*", default=["src"],
                        help="files or directories to lint (default: src)")
    parser.add_argument("--select", metavar="CODES",
                        help="comma-separated rule codes to run exclusively")
    parser.add_argument("--ignore", metavar="CODES",
                        help="comma-separated rule codes to skip")
    parser.add_argument("--deep", action="store_true",
                        help="also run the whole-program dataflow rules "
                             "(call-graph + alias/escape analysis)")
    parser.add_argument("--json", action="store_true", dest="as_json",
                        help="emit a JSON report (violations, file count, "
                             "wall time)")
    parser.add_argument("--sarif", metavar="FILE",
                        help="write a SARIF 2.1.0 report to FILE "
                             "('-' for stdout)")
    parser.add_argument("--jobs", type=int, default=None, metavar="N",
                        help="process-pool width for the per-file scan "
                             "(default: min(8, cpu count); 1 = serial)")
    parser.add_argument("--baseline", metavar="FILE",
                        default=".dooc-baseline.json",
                        help="accepted-findings baseline to subtract "
                             "(default: .dooc-baseline.json if present)")
    parser.add_argument("--no-baseline", action="store_true",
                        help="report every finding, baseline or not")
    parser.add_argument("--write-baseline", action="store_true",
                        help="record the current findings as the accepted "
                             "baseline and exit 0")
    parser.add_argument("--strict", action="store_true",
                        help="disable the built-in per-directory "
                             "relaxations (tests/, benchmarks/, examples/)")
    parser.add_argument("--list-rules", action="store_true",
                        help="print the rule catalog and exit")
    parser.add_argument("--rule-table", action="store_true",
                        help="print the docs rule table (markdown) and exit")
    args = parser.parse_args(argv)

    if args.list_rules:
        for code, rule in sorted(all_rules().items()):
            deep = "  [deep]" if code in DEEP_RULES else ""
            print(f"{code}  {rule.name}: {rule.description}{deep}")
        for prefix, codes in sorted(DEFAULT_PATH_RELAXATIONS.items()):
            print(f"(default relaxation) {prefix}/: "
                  + ", ".join(sorted(codes)) + " off")
        return 0

    if args.rule_table:
        print(rule_table_markdown(), end="")
        return 0

    select = _codes(args.select)
    ignore = _codes(args.ignore)
    jobs = args.jobs if args.jobs is not None else _default_jobs()

    started = time.monotonic()
    try:
        violations = lint_paths(args.paths, select=select, ignore=ignore,
                                strict=args.strict, jobs=jobs)
        if args.deep:
            from repro.analysis.flow import deep_lint_paths
            violations = violations + deep_lint_paths(
                args.paths, select=select, ignore=ignore,
                strict=args.strict)
    except ValueError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    wall_time = time.monotonic() - started

    from repro.analysis.lint import iter_python_files
    n_files = len(iter_python_files(args.paths))

    from repro.analysis.flow.baseline import (
        apply_baseline,
        load_baseline,
        write_baseline,
    )
    if args.write_baseline:
        n = write_baseline(args.baseline, violations)
        print(f"baseline: wrote {n} finding(s) to {args.baseline}",
              file=sys.stderr)
        return 0
    baselined = 0
    if not args.no_baseline and Path(args.baseline).exists():
        violations, baselined = apply_baseline(
            violations, load_baseline(args.baseline))

    active_rules = dict(RULES)
    if args.deep:
        active_rules.update(DEEP_RULES)
    if args.sarif:
        from repro.analysis.flow.sarif import render_sarif
        text = render_sarif(violations, active_rules)
        if args.sarif == "-":
            print(text, end="")
        else:
            Path(args.sarif).write_text(text, encoding="utf-8")

    if args.as_json:
        print(json.dumps({
            "violations": [v.to_json() for v in violations],
            "files": n_files,
            "wall_time_s": round(wall_time, 3),
            "deep": args.deep,
            "baselined": baselined,
        }, indent=2))
    elif args.sarif != "-":
        for v in violations:
            print(v.render())
        if violations:
            counts: dict[str, int] = {}
            for v in violations:
                counts[v.code] = counts.get(v.code, 0) + 1
            summary = ", ".join(f"{c} x{n}" for c, n in sorted(counts.items()))
            suffix = f" ({baselined} baselined)" if baselined else ""
            print(f"{len(violations)} violation(s): {summary}{suffix}",
                  file=sys.stderr)
    return 1 if violations else 0


if __name__ == "__main__":  # pragma: no cover
    raise SystemExit(main())
