"""``python -m repro lint`` — run the protocol-aware linter.

    python -m repro lint src
    python -m repro lint src tests --json
    python -m repro lint src --select DOOC001,DOOC002
    python -m repro lint tests --strict     # disable per-dir relaxations

Exit status: 0 clean, 1 violations found, 2 usage error.
"""

from __future__ import annotations

import argparse
import json
import sys

from repro.analysis.lint import (
    DEFAULT_PATH_RELAXATIONS,
    RULES,
    lint_paths,
)


def _codes(raw: str | None) -> list[str] | None:
    if raw is None:
        return None
    return [c.strip().upper() for c in raw.split(",") if c.strip()]


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro lint",
        description="Protocol-aware lint for the DOoC runtime "
                    "(rules DOOC001..DOOC004; see docs/ANALYSIS.md).",
    )
    parser.add_argument("paths", nargs="*", default=["src"],
                        help="files or directories to lint (default: src)")
    parser.add_argument("--select", metavar="CODES",
                        help="comma-separated rule codes to run exclusively")
    parser.add_argument("--ignore", metavar="CODES",
                        help="comma-separated rule codes to skip")
    parser.add_argument("--json", action="store_true", dest="as_json",
                        help="emit violations as a JSON array")
    parser.add_argument("--strict", action="store_true",
                        help="disable the built-in per-directory "
                             "relaxations (tests/, benchmarks/, examples/)")
    parser.add_argument("--list-rules", action="store_true",
                        help="print the rule catalog and exit")
    args = parser.parse_args(argv)

    # Importing the rules module populates the registry.
    import repro.analysis.rules  # noqa: F401

    if args.list_rules:
        for code, rule in sorted(RULES.items()):
            print(f"{code}  {rule.name}: {rule.description}")
        for prefix, codes in sorted(DEFAULT_PATH_RELAXATIONS.items()):
            print(f"(default relaxation) {prefix}/: "
                  + ", ".join(sorted(codes)) + " off")
        return 0

    try:
        violations = lint_paths(
            args.paths,
            select=_codes(args.select),
            ignore=_codes(args.ignore),
            strict=args.strict,
        )
    except ValueError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2

    if args.as_json:
        print(json.dumps([v.to_json() for v in violations], indent=2))
    else:
        for v in violations:
            print(v.render())
        if violations:
            counts: dict[str, int] = {}
            for v in violations:
                counts[v.code] = counts.get(v.code, 0) + 1
            summary = ", ".join(f"{c} x{n}" for c, n in sorted(counts.items()))
            print(f"{len(violations)} violation(s): {summary}",
                  file=sys.stderr)
    return 1 if violations else 0


if __name__ == "__main__":  # pragma: no cover
    raise SystemExit(main())
