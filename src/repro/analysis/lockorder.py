"""Lock-order recording and cycle detection for the threaded runtime.

A deadlock between two threads needs two locks acquired in opposite
orders.  The runtime never *intends* to nest its per-instance condition
variables, but nothing enforced that — a future change that takes lock B
while holding lock A on one thread and A-under-B on another would only
surface as a watchdog stall, minutes into a soak run, with no named
culprit.

:class:`LockOrderRecorder` turns the discipline into a checkable
invariant: wrap every runtime lock (``wrap``/``wrap_condition``), and each
acquisition made while other wrapped locks are held adds a *held → taken*
edge to a cross-thread graph.  :meth:`check` (called by
``ThreadedRuntime.join`` when the checkers are on) raises
:class:`LockOrderViolation` naming the cycle — which locks, which
threads, and where each edge was first observed — the moment an ordering
inversion is ever *exercised*, even if the interleaving happened to not
deadlock this run.

Overhead is a thread-local list append per acquisition, and the wrapping
only happens under ``DOOC_CHECKERS=1`` (or an explicit recorder), so
production runs pay nothing.
"""

from __future__ import annotations

import threading
import traceback
from dataclasses import dataclass

__all__ = ["LockOrderRecorder", "LockOrderViolation",
           "RecordingLock", "RecordingCondition"]


class LockOrderViolation(RuntimeError):
    """The observed lock acquisition graph contains a cycle."""

    def __init__(self, message: str, cycle: list[str]):
        super().__init__(message)
        self.cycle = cycle


@dataclass(frozen=True)
class _Edge:
    """First observation of ``held`` being held while ``taken`` was taken."""

    held: str
    taken: str
    thread: str
    site: str  # "file:line" of the acquiring call


class _HeldStack(threading.local):
    def __init__(self):
        self.names: list[str] = []


def _acquire_site() -> str:
    # Walk out of this module to the caller that actually took the lock.
    for frame in reversed(traceback.extract_stack(limit=8)[:-1]):
        if not frame.filename.endswith("lockorder.py"):
            return f"{frame.filename}:{frame.lineno}"
    return "<unknown>"


class LockOrderRecorder:
    """Builds the cross-thread *held → taken* graph of wrapped locks."""

    def __init__(self):
        self._graph_lock = threading.Lock()
        self._edges: dict[tuple[str, str], _Edge] = {}
        self._held = _HeldStack()

    # -- wrapping ----------------------------------------------------------

    def wrap(self, lock: threading.Lock | threading.RLock,
             name: str) -> RecordingLock:
        return RecordingLock(self, lock, name)

    def wrap_condition(self, cond: threading.Condition,
                       name: str) -> RecordingCondition:
        return RecordingCondition(self, cond, name)

    # -- recording ---------------------------------------------------------

    def note_acquired(self, name: str) -> None:
        held = self._held.names
        if held:
            site = _acquire_site()
            thread = threading.current_thread().name
            with self._graph_lock:
                for h in held:
                    if h != name:
                        self._edges.setdefault(
                            (h, name), _Edge(h, name, thread, site))
        held.append(name)

    def note_released(self, name: str) -> None:
        held = self._held.names
        # Out-of-order releases are legal; drop the most recent occurrence.
        for i in range(len(held) - 1, -1, -1):
            if held[i] == name:
                del held[i]
                return

    # -- analysis ----------------------------------------------------------

    def edges(self) -> list[tuple[str, str]]:
        with self._graph_lock:
            return sorted(self._edges)

    def find_cycle(self) -> list[str] | None:
        """A lock-name cycle in the acquisition graph, or None."""
        with self._graph_lock:
            succs: dict[str, list[str]] = {}
            for held, taken in self._edges:
                succs.setdefault(held, []).append(taken)
        WHITE, GREY, BLACK = 0, 1, 2
        color: dict[str, int] = {}
        parent: dict[str, str] = {}

        def dfs(node: str) -> list[str] | None:
            color[node] = GREY
            for nxt in sorted(succs.get(node, [])):
                if color.get(nxt, WHITE) == GREY:
                    # unwind the grey path back to nxt
                    cycle = [nxt, node]
                    cur = node
                    while cur != nxt:
                        cur = parent[cur]
                        cycle.append(cur)
                    cycle.reverse()
                    return cycle
                if color.get(nxt, WHITE) == WHITE:
                    parent[nxt] = node
                    found = dfs(nxt)
                    if found:
                        return found
            color[node] = BLACK
            return None

        for node in sorted(succs):
            if color.get(node, WHITE) == WHITE:
                found = dfs(node)
                if found:
                    return found
        return None

    def check(self) -> None:
        """Raise :class:`LockOrderViolation` if an ordering cycle exists."""
        cycle = self.find_cycle()
        if cycle is None:
            return
        with self._graph_lock:
            lines = ["lock-order cycle detected (a deadlock waiting for the "
                     "right interleaving):",
                     "  cycle: " + " -> ".join(cycle)]
            for held, taken in zip(cycle, cycle[1:], strict=False):
                edge = self._edges.get((held, taken))
                if edge is not None:
                    lines.append(
                        f"  {held} held while taking {taken} "
                        f"[thread {edge.thread}, {edge.site}]")
        raise LockOrderViolation("\n".join(lines), cycle)


class RecordingLock:
    """A lock proxy that reports acquisitions to a recorder."""

    def __init__(self, recorder: LockOrderRecorder, lock, name: str):
        self._recorder = recorder
        self._lock = lock
        self.name = name

    def acquire(self, blocking: bool = True,
                timeout: float = -1) -> bool:
        got = self._lock.acquire(blocking, timeout)
        if got:
            self._recorder.note_acquired(self.name)
        return got

    def release(self) -> None:
        self._lock.release()
        self._recorder.note_released(self.name)

    def locked(self) -> bool:
        return self._lock.locked()

    def __enter__(self) -> RecordingLock:
        self.acquire()
        return self

    def __exit__(self, *exc: object) -> None:
        self.release()


class RecordingCondition:
    """A condition-variable proxy that reports acquisitions to a recorder.

    ``wait`` keeps the lock on the recorder's held stack even though the
    underlying condition releases it internally: the waiting thread takes
    no other locks while parked, so no false edges arise, and the stack
    matches reality again the moment ``wait`` returns re-acquired.
    """

    def __init__(self, recorder: LockOrderRecorder,
                 cond: threading.Condition, name: str):
        self._recorder = recorder
        self._cond = cond
        self.name = name

    # -- lock surface ------------------------------------------------------

    def acquire(self, *args, **kwargs) -> bool:
        got = self._cond.acquire(*args, **kwargs)
        if got:
            self._recorder.note_acquired(self.name)
        return got

    def release(self) -> None:
        self._cond.release()
        self._recorder.note_released(self.name)

    def __enter__(self) -> RecordingCondition:
        self.acquire()
        return self

    def __exit__(self, *exc: object) -> None:
        self.release()

    # -- condition surface -------------------------------------------------

    def wait(self, timeout: float | None = None) -> bool:
        return self._cond.wait(timeout)

    def wait_for(self, predicate, timeout: float | None = None):
        return self._cond.wait_for(predicate, timeout)

    def notify(self, n: int = 1) -> None:
        self._cond.notify(n)

    def notify_all(self) -> None:
        self._cond.notify_all()
