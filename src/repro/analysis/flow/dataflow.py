"""Per-function dataflow summaries for the whole-program rules.

One pass over each function body produces a :class:`FunctionSummary` that
all three deep rules share:

* a small **alias lattice** over dotted roots (``b = a[1:]`` makes ``b``
  derive from ``a``; ``v = ticket.data`` makes ``v`` derive from
  ``ticket.data``), with *sealed sources* — expressions that produce
  read-only zero-copy views (``np.frombuffer``, ``attach_view`` without
  ``writable=True``, tickets granted by ``request_read``);
* every **mutation sink** (subscript store, augmented assign, in-place
  ndarray method, ``np.copyto``-style destination write, a
  ``writeable``/``setflags(write=True)`` flip) with the dotted root it
  mutates;
* every **lock acquisition** (``with <lockish>:``) and every **call**
  made while locks are held, keyed by a static lock identity
  (``ClassName.attr`` for ``self``-attached locks);
* the **effect facts**: whether the function returns a ``list[Effect]``
  (directly, through an accumulator variable, or by returning another
  call), plus bare-statement calls and bound-but-unused call results.

The lattice is flow-insensitive: a name is sealed if *any* assignment in
the function makes it so.  That trades a little precision (a rebound name
stays tainted) for a lot of robustness — and ``# dooc: noqa[...]`` exists
for the rare deliberate deviation.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field

from repro.analysis.flow.callgraph import CallGraph, FunctionInfo, dotted_expr

__all__ = [
    "SealFact",
    "Mutation",
    "LockAcquire",
    "CallEvent",
    "FunctionSummary",
    "summarize",
    "sealed_lookup",
    "sealed_closure",
]

#: ndarray methods that return a *view* of the receiver
VIEW_METHODS = frozenset({
    "reshape", "view", "ravel", "squeeze", "transpose", "swapaxes",
    "diagonal", "asarray",
})

#: ndarray attributes that alias the receiver's buffer (``.data`` also
#: covers ``ticket.data``: the granted view aliases the ticket's block)
VIEW_ATTRS = frozenset({"T", "real", "imag", "flat", "data"})

#: np.* functions that return a view / no-copy wrapper of their first arg
VIEW_FUNCS = frozenset({"asarray", "atleast_1d", "atleast_2d"})

#: ndarray methods that mutate the receiver in place
INPLACE_METHODS = frozenset({
    "sort", "fill", "put", "partition", "itemset", "setfield", "resize",
    "byteswap",
})

#: np.* functions whose FIRST argument is a written-to destination
DEST_WRITE_FUNCS = frozenset({
    "copyto", "place", "putmask", "put_along_axis", "put",
})

#: callables that grant read-only tickets (ticket.data is a sealed view)
READ_GRANT_FUNCS = frozenset({"request_read"})

#: LocalStore methods returning list[Effect] (mirror of rules.EFFECT_FUNCS;
#: duplicated here so the flow package never imports the per-file rules)
EFFECT_FUNCS = frozenset({
    "release", "prefetch", "delete_array",
    "on_loaded", "on_spilled", "on_remote_data",
    "on_load_failed", "on_fetch_failed", "on_spill_failed",
    "abandon_write", "rehome_local", "rehome_remote",
    "_pump_allocs", "_wake_readers", "_reclaim", "_fail_waiters",
    "_drive_read", "_alloc_then", "_purge_blocks",
})

_LOCKISH_FRAGMENTS = ("lock", "cond", "mutex", "sem")


@dataclass(frozen=True)
class SealFact:
    """Why a dotted root is sealed, and how the taint got here."""

    origin: str                 # e.g. "np.frombuffer view at core/shm.py:165"
    path: tuple[str, ...] = ()  # interprocedural hops, oldest first


@dataclass(frozen=True)
class Mutation:
    kind: str    # subscript-store / augmented-assign / inplace-method /
    #            # dest-write / writeable-flip
    root: str    # dotted root of the mutated expression
    detail: str  # human fragment ("v[...] = ...", ".sort()", ...)
    line: int
    col: int


@dataclass(frozen=True)
class LockAcquire:
    key: str                  # static lock identity
    held: tuple[str, ...]     # locks already held at this acquisition
    line: int
    col: int


@dataclass(frozen=True)
class CallEvent:
    call: ast.Call
    held: tuple[str, ...]     # locks held around the call
    line: int
    col: int


@dataclass
class FunctionSummary:
    info: FunctionInfo
    #: tgt dotted root -> src dotted roots it derives from
    aliases: list[tuple[str, str]] = field(default_factory=list)
    #: dotted root -> seal fact for intraprocedural sealed sources
    sources: dict[str, SealFact] = field(default_factory=dict)
    mutations: list[Mutation] = field(default_factory=list)
    acquires: list[LockAcquire] = field(default_factory=list)
    calls: list[CallEvent] = field(default_factory=list)
    #: dotted roots appearing in a `return` statement
    returned_roots: set[str] = field(default_factory=set)
    #: True when a `return` directly returns a sealed-source expression
    returns_sealed_expr: SealFact | None = None
    #: calls whose result is returned (directly or via a returned name)
    returned_calls: list[ast.Call] = field(default_factory=list)
    #: (target name, call, line, col) for `name = f(...)` bindings
    assigned_calls: list[tuple[str, ast.Call, int, int]] = field(
        default_factory=list)
    #: bare `f(...)` statements
    bare_calls: list[tuple[ast.Call, int, int]] = field(default_factory=list)
    #: True when the function returns LocalStore effects directly
    returns_effects_direct: bool = False
    #: every Name read anywhere in the body (for unused-binding checks)
    loaded_names: set[str] = field(default_factory=set)


# -- expression helpers -------------------------------------------------------


def _is_lockish(name: str | None) -> bool:
    return name is not None and any(
        f in name.lower() for f in _LOCKISH_FRAGMENTS)


def _call_name(call: ast.Call) -> str | None:
    if isinstance(call.func, ast.Attribute):
        return call.func.attr
    if isinstance(call.func, ast.Name):
        return call.func.id
    return None


def _receiver(call: ast.Call) -> str | None:
    if isinstance(call.func, ast.Attribute):
        return dotted_expr(call.func.value)
    return None


def root_of(node: ast.AST) -> str | None:
    """Dotted root an expression's buffer aliases, or None (fresh value).

    ``a`` -> "a", ``a.b[0].c`` -> "a.b.c", ``a.reshape(...)`` -> "a",
    ``np.asarray(a)`` -> "a"; arithmetic/copies return None.
    """
    if isinstance(node, ast.Name):
        return node.id
    if isinstance(node, ast.Attribute):
        base = root_of(node.value)
        return None if base is None else f"{base}.{node.attr}"
    if isinstance(node, ast.Subscript):
        return root_of(node.value)
    if isinstance(node, ast.Starred):
        return root_of(node.value)
    if isinstance(node, ast.Call):
        func = node.func
        if isinstance(func, ast.Attribute) and func.attr in VIEW_METHODS:
            return root_of(func.value)
        if (_call_name(node) in VIEW_FUNCS and node.args):
            return root_of(node.args[0])
    return None


#: wrapper functions whose *call site* decides view writability; their
#: returns must not be blanket-tainted interprocedurally (the keyword is
#: only visible at the call)
VIEW_CONSTRUCTOR_NAMES = frozenset({"frombuffer", "attach_view", "ndarray"})


def _kw_is_true(call: ast.Call, name: str) -> bool:
    for kw in call.keywords:
        if (kw.arg == name and isinstance(kw.value, ast.Constant)
                and kw.value.value is True):
            return True
    return False


def _sealed_source(call: ast.Call, path: str) -> str | None:
    """Origin string when a call expression creates a sealed view."""
    name = _call_name(call)
    if name == "frombuffer":
        return f"np.frombuffer view at {path}:{call.lineno}"
    if name == "attach_view":
        if _kw_is_true(call, "writable"):
            return None  # an explicit write-grant view
        return f"attach_view() segment view at {path}:{call.lineno}"
    if name == "ndarray":
        # SegmentPool.ndarray(...): writable by default (fill-then-seal),
        # sealed only when the caller asks for readonly=True.
        receiver = _receiver(call)
        tail = receiver.split(".")[-1] if receiver else ""
        if "pool" in tail.lower() and _kw_is_true(call, "readonly"):
            return f"segment-pool readonly view at {path}:{call.lineno}"
        return None
    return None


def is_effectful_call(call: ast.Call) -> bool:
    """Is this a direct LocalStore call returning ``list[Effect]``?

    Mirrors the DOOC002 receiver discipline: ``release`` only counts on
    store-ish receivers so threading locks and DES resources stay out.
    """
    if not isinstance(call.func, ast.Attribute):
        return False
    name = call.func.attr
    if name not in EFFECT_FUNCS:
        return False
    receiver = dotted_expr(call.func.value)
    tail = receiver.split(".")[-1] if receiver else None
    if _is_lockish(tail):
        return False
    if name == "release" and (tail is None or "store" not in tail.lower()):
        return False
    return True


def _lock_key(expr: ast.expr, info: FunctionInfo) -> str | None:
    """Static identity of a lock in a ``with`` item, or None if not lockish.

    ``self._lock`` in a method of ``LocalStore`` keys as
    ``LocalStore._lock`` — the *class-attribute* granularity a lock-order
    discipline is stated at.  Other receivers key textually.
    """
    dotted = dotted_expr(expr)
    if dotted is None and isinstance(expr, ast.Call):
        # `with lock_for(x):` — key on the call name when lockish.
        name = _call_name(expr)
        dotted = name
    if dotted is None:
        return None
    tail = dotted.split(".")[-1]
    if not _is_lockish(tail):
        return None
    parts = dotted.split(".")
    if parts[0] in ("self", "cls") and info.cls is not None:
        return ".".join([info.cls, *parts[1:]])
    if len(parts) == 1:
        return f"{info.module}:{parts[0]}"
    return dotted


# -- the summary pass ----------------------------------------------------------


_SKIP_NESTED = (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef,
                ast.Lambda)


def _calls_in(node: ast.AST):
    """Calls under a node, outermost-first, skipping nested defs/lambdas."""
    if isinstance(node, ast.Call):
        yield node
    for child in ast.iter_child_nodes(node):
        if isinstance(child, _SKIP_NESTED):
            continue
        yield from _calls_in(child)


def summarize(info: FunctionInfo, graph: CallGraph) -> FunctionSummary:
    """Build the shared dataflow summary for one function."""
    s = FunctionSummary(info)
    path = info.path

    def seal_origin(value: ast.expr) -> str | None:
        """Sealed origin of an expression, following only view-preserving
        structure (a copying call like ``np.array(frombuffer(...))`` does
        not propagate the seal)."""
        if isinstance(value, ast.Call):
            origin = _sealed_source(value, path)
            if origin is not None:
                return origin
            if _call_name(value) in VIEW_FUNCS and value.args:
                return seal_origin(value.args[0])
            if (isinstance(value.func, ast.Attribute)
                    and value.func.attr in VIEW_METHODS):
                return seal_origin(value.func.value)
            return None
        if isinstance(value, (ast.Subscript, ast.Starred)):
            return seal_origin(value.value)
        if isinstance(value, ast.Attribute) and value.attr in VIEW_ATTRS:
            return seal_origin(value.value)
        return None

    def note_value(target_root: str | None, value: ast.expr,
                   line: int, col: int) -> None:
        """Record alias/seal facts for ``target = value``."""
        if target_root is None:
            return
        src = root_of(value)
        if src is not None and src != target_root:
            s.aliases.append((target_root, src))
        origin = seal_origin(value)
        if origin is not None:
            s.sources[target_root] = SealFact(origin)

    def mutated_root(expr: ast.expr, line: int, col: int) -> str | None:
        """Dotted root for a mutated expression; anonymous sealed
        expressions (``np.frombuffer(b)[:] = ...``) get a synthetic
        pre-sealed root so the mutation still anchors somewhere."""
        root = root_of(expr)
        if root is not None:
            return root
        origin = seal_origin(expr)
        if origin is not None:
            key = f"<expr@{line}:{col}>"
            s.sources[key] = SealFact(origin)
            return key
        return None

    def scan_expr(node: ast.expr) -> None:
        """Mutation sinks + loads inside one expression."""
        for sub in ast.walk(node):
            if isinstance(sub, ast.Name) and isinstance(sub.ctx, ast.Load):
                s.loaded_names.add(sub.id)
        for call in _calls_in(node):
            name = _call_name(call)
            if (isinstance(call.func, ast.Attribute)
                    and name in INPLACE_METHODS):
                root = mutated_root(call.func.value, call.lineno,
                                    call.col_offset)
                if root is not None:
                    s.mutations.append(Mutation(
                        "inplace-method", root, f".{name}()",
                        call.lineno, call.col_offset))
            elif name in DEST_WRITE_FUNCS and call.args:
                receiver = _receiver(call)
                if receiver in (None, "np", "numpy"):
                    root = mutated_root(call.args[0], call.lineno,
                                        call.col_offset)
                    if root is not None:
                        s.mutations.append(Mutation(
                            "dest-write", root, f"np.{name}(dst, ...)",
                            call.lineno, call.col_offset))
            elif (isinstance(call.func, ast.Attribute)
                  and name == "setflags"):
                for kw in call.keywords:
                    if (kw.arg == "write"
                            and isinstance(kw.value, ast.Constant)
                            and kw.value.value):
                        root = root_of(call.func.value)
                        if root is not None:
                            s.mutations.append(Mutation(
                                "writeable-flip", root,
                                ".setflags(write=True)",
                                call.lineno, call.col_offset))

    def note_assign_targets(targets: list[ast.expr], value: ast.expr,
                            line: int, col: int) -> None:
        for target in targets:
            if isinstance(target, ast.Name):
                note_value(target.id, value, line, col)
                if isinstance(value, ast.Call):
                    s.assigned_calls.append((target.id, value, line, col))
                # request_read grants: the bound ticket's .data is sealed.
                if (isinstance(value, ast.Call)
                        and _call_name(value) in READ_GRANT_FUNCS):
                    s.sources[target.id] = SealFact(
                        f"read grant ({_call_name(value)}) at "
                        f"{path}:{line}")
            elif isinstance(target, (ast.Tuple, ast.List)):
                # `ticket, effects = store.request_read(iv)`: the ticket is
                # the first element by the LocalStore API shape.
                if (isinstance(value, ast.Call)
                        and _call_name(value) in READ_GRANT_FUNCS
                        and target.elts
                        and isinstance(target.elts[0], ast.Name)):
                    s.sources[target.elts[0].id] = SealFact(
                        f"read grant ({_call_name(value)}) at "
                        f"{path}:{line}")
            elif isinstance(target, ast.Subscript):
                root = mutated_root(target.value, line, col)
                if root is not None:
                    s.mutations.append(Mutation(
                        "subscript-store", root, "view[...] = ...",
                        line, col))
            elif isinstance(target, ast.Attribute):
                dotted = root_of(target)
                if dotted is not None and dotted.endswith(".writeable"):
                    if (isinstance(value, ast.Constant) and value.value):
                        base = dotted[:-len(".writeable")]
                        if base.endswith(".flags"):
                            base = base[:-len(".flags")]
                        s.mutations.append(Mutation(
                            "writeable-flip", base,
                            ".flags.writeable = True", line, col))
                elif dotted is not None:
                    note_value(dotted, value, line, col)

    def visit(stmts: list[ast.stmt], held: tuple[str, ...]) -> None:
        for stmt in stmts:
            if isinstance(stmt, _SKIP_NESTED):
                continue

            # -- generic: every call is a call event; every expr is scanned
            for sub_expr in _stmt_exprs(stmt):
                scan_expr(sub_expr)
                for call in _calls_in(sub_expr):
                    s.calls.append(CallEvent(call, held,
                                             call.lineno, call.col_offset))

            if isinstance(stmt, ast.Assign):
                note_assign_targets(stmt.targets, stmt.value,
                                    stmt.lineno, stmt.col_offset)
            elif isinstance(stmt, ast.AnnAssign) and stmt.value is not None:
                note_assign_targets([stmt.target], stmt.value,
                                    stmt.lineno, stmt.col_offset)
            elif isinstance(stmt, ast.AugAssign):
                root = mutated_root(stmt.target, stmt.lineno,
                                    stmt.col_offset)
                if root is not None:
                    s.mutations.append(Mutation(
                        "augmented-assign", root, "view <op>= ...",
                        stmt.lineno, stmt.col_offset))
            elif isinstance(stmt, ast.For):
                if isinstance(stmt.target, ast.Name):
                    src = root_of(stmt.iter)
                    if src is not None:
                        s.aliases.append((stmt.target.id, src))
            elif isinstance(stmt, ast.Return) and stmt.value is not None:
                value = stmt.value
                root = root_of(value)
                if root is not None:
                    s.returned_roots.add(root)
                origin = seal_origin(value)
                if origin is not None:
                    s.returns_sealed_expr = SealFact(origin)
                if isinstance(value, ast.Call):
                    s.returned_calls.append(value)
                    if is_effectful_call(value):
                        s.returns_effects_direct = True
            elif isinstance(stmt, ast.Expr) and isinstance(
                    stmt.value, ast.Call):
                s.bare_calls.append((stmt.value, stmt.lineno,
                                     stmt.col_offset))

            # -- effect accumulators: effects.extend(store.release(t)) etc.
            if isinstance(stmt, ast.Expr) and isinstance(stmt.value, ast.Call):
                call = stmt.value
                if (isinstance(call.func, ast.Attribute)
                        and call.func.attr in ("extend", "append")
                        and call.args):
                    tgt = root_of(call.func.value)
                    arg = call.args[0]
                    if tgt is not None:
                        if (isinstance(arg, ast.Call)
                                and is_effectful_call(arg)):
                            s.aliases.append((tgt, _EFFECTS_TOKEN))
                        elif isinstance(arg, ast.Call):
                            s.assigned_calls.append(
                                (tgt, arg, stmt.lineno, stmt.col_offset))
                            s.loaded_names.add(tgt)
            if isinstance(stmt, ast.AugAssign) and isinstance(
                    stmt.value, ast.Call):
                tgt = root_of(stmt.target)
                if tgt is not None and is_effectful_call(stmt.value):
                    s.aliases.append((tgt, _EFFECTS_TOKEN))
            if isinstance(stmt, ast.Assign) and isinstance(
                    stmt.value, ast.Call) and is_effectful_call(stmt.value):
                for target in stmt.targets:
                    if isinstance(target, ast.Name):
                        s.aliases.append((target.id, _EFFECTS_TOKEN))

            # -- control flow ------------------------------------------------
            if isinstance(stmt, (ast.With, ast.AsyncWith)):
                inner = held
                for item in stmt.items:
                    key = _lock_key(item.context_expr, info)
                    if key is not None:
                        s.acquires.append(LockAcquire(
                            key, inner, stmt.lineno, stmt.col_offset))
                        inner = (*inner, key)
                    if item.optional_vars is not None and isinstance(
                            item.optional_vars, ast.Name):
                        note_value(item.optional_vars.id, item.context_expr,
                                   stmt.lineno, stmt.col_offset)
                visit(stmt.body, inner)
                continue

            for fld in ("body", "orelse", "finalbody"):
                visit(getattr(stmt, fld, []) or [], held)
            for handler in getattr(stmt, "handlers", []) or []:
                visit(handler.body, held)

    visit(info.node.body, ())
    return s


#: pseudo-root marking "this name carries LocalStore effects"
_EFFECTS_TOKEN = "<effects>"


def _stmt_exprs(stmt: ast.stmt):
    """The expression children of a statement (headers of compound stmts
    only — bodies are visited as statements)."""
    for fld, value in ast.iter_fields(stmt):
        if fld in ("body", "orelse", "finalbody", "handlers"):
            continue
        if isinstance(value, ast.expr):
            yield value
        elif isinstance(value, list):
            for item in value:
                if isinstance(item, ast.expr):
                    yield item
                elif isinstance(item, ast.withitem):
                    yield item.context_expr


# -- sealed-set closure --------------------------------------------------------


def sealed_lookup(sealed: dict[str, SealFact], key: str) -> SealFact | None:
    """Exact or dotted-prefix hit: ``ticket.data`` is sealed when
    ``ticket`` is."""
    if key in sealed:
        return sealed[key]
    parts = key.split(".")
    for i in range(len(parts) - 1, 0, -1):
        fact = sealed.get(".".join(parts[:i]))
        if fact is not None:
            return fact
    return None


def sealed_closure(summary: FunctionSummary,
                   facts: dict[str, SealFact]) -> dict[str, SealFact]:
    """Propagate seal facts through the function's alias edges."""
    out = dict(summary.sources)
    out.update(facts)
    changed = True
    while changed:
        changed = False
        for tgt, src in summary.aliases:
            if tgt in out or src == _EFFECTS_TOKEN:
                continue
            fact = sealed_lookup(out, src)
            if fact is not None:
                out[tgt] = fact
                changed = True
    return out
