"""Whole-program rules DOOC010..DOOC012 over the flow engine.

Each rule consumes a :class:`~repro.analysis.flow.Program` (call graph +
per-function dataflow summaries) and yields :class:`Violation` records:

========  ==================================================================
DOOC010   sealed-view mutation escape: an in-place mutation (subscript
          store, augmented assign, ``np.copyto``-style destination write,
          an in-place ndarray method, a ``writeable`` flip) reachable
          through the call graph from a sealed zero-copy source
          (``np.frombuffer``, ``attach_view`` without ``writable=True``,
          a ``request_read`` grant).  The static complement of
          ``WritableReadViewError``.
DOOC011   static lock-order cycle: *held → taken* edges collected from
          ``with``-nesting and propagated across calls form a cycle in
          the class-attribute lock graph, reported with a call-path
          witness.  The static complement of ``LockOrderRecorder``.
DOOC012   interprocedural effect drop: the DOOC002 check pushed through
          helpers — a function that (transitively) returns a
          ``LocalStore`` ``list[Effect]`` called as a bare statement, or
          its result bound to a name that is never pumped.
========  ==================================================================

The rules are registered in :data:`repro.analysis.lint.DEEP_RULES` and run
by ``python -m repro lint --deep``.
"""

from __future__ import annotations

from collections.abc import Iterator
from dataclasses import dataclass
from typing import TYPE_CHECKING

from repro.analysis.flow.dataflow import (
    _EFFECTS_TOKEN,
    VIEW_CONSTRUCTOR_NAMES,
    SealFact,
    is_effectful_call,
    root_of,
    sealed_closure,
    sealed_lookup,
)
from repro.analysis.lint import Violation, register_deep

if TYPE_CHECKING:  # pragma: no cover
    from repro.analysis.flow import Program

__all__ = ["check_sealed_view_escape", "check_static_lock_order",
           "check_effect_drop"]

#: fixpoint safety valve; real repos converge in a handful of rounds
_MAX_ROUNDS = 64


# -- DOOC010: sealed-view mutation escape -------------------------------------


def _fmt_path(fact: SealFact) -> str:
    if not fact.path:
        return ""
    return "; taint path: " + " -> ".join(fact.path)


@register_deep(
    "DOOC010",
    "sealed-view-mutation",
    "in-place mutation reachable from a sealed zero-copy view source "
    "(frombuffer / attach_view / read grant) through the call graph",
)
def check_sealed_view_escape(program: "Program") -> Iterator[Violation]:
    graph = program.graph
    summaries = program.summaries
    #: interprocedurally injected facts: qualname -> {dotted root: fact}
    inter: dict[str, dict[str, SealFact]] = {}
    returns_sealed: dict[str, SealFact] = {}

    changed = True
    rounds = 0
    while changed and rounds < _MAX_ROUNDS:
        changed = False
        rounds += 1
        for qual, summ in summaries.items():
            closure = sealed_closure(summ, inter.get(qual, {}))

            # does this function return a sealed view?  View-constructor
            # wrappers (attach_view, SegmentPool.ndarray) are excluded:
            # their writability is a call-site keyword, which the
            # call-site source rules in the dataflow pass already judge.
            if (qual not in returns_sealed
                    and summ.info.name not in VIEW_CONSTRUCTOR_NAMES):
                fact = summ.returns_sealed_expr
                if fact is None:
                    for root in summ.returned_roots:
                        fact = sealed_lookup(closure, root)
                        if fact is not None:
                            break
                if fact is None:
                    for call in summ.returned_calls:
                        callee = graph.resolve(call, summ.info)
                        if (callee is not None
                                and callee.qualname in returns_sealed
                                and callee.qualname != qual):
                            rf = returns_sealed[callee.qualname]
                            fact = SealFact(rf.origin, rf.path)
                            break
                if fact is not None:
                    returns_sealed[qual] = fact
                    changed = True

            # sealed arguments taint callee parameters
            for ev in summ.calls:
                callee = graph.resolve(ev.call, summ.info)
                if callee is None or callee.qualname not in summaries:
                    continue
                for arg_expr, param in graph.bind_args(ev.call, callee):
                    root = root_of(arg_expr)
                    if root is None:
                        continue
                    fact = sealed_lookup(closure, root)
                    if fact is None:
                        continue
                    tgt = inter.setdefault(callee.qualname, {})
                    if param not in tgt:
                        hop = (f"{summ.info.qualname} "
                               f"({summ.info.path}:{ev.line})")
                        tgt[param] = SealFact(fact.origin,
                                              (*fact.path, hop))
                        changed = True

            # sealed returns taint the names call results are bound to
            for name, call, line, _col in summ.assigned_calls:
                callee = graph.resolve(call, summ.info)
                if (callee is None or callee.qualname == qual
                        or callee.qualname not in returns_sealed):
                    continue
                tgt = inter.setdefault(qual, {})
                if name not in tgt:
                    rf = returns_sealed[callee.qualname]
                    hop = f"returned by {callee.qualname}"
                    tgt[name] = SealFact(rf.origin, (*rf.path, hop))
                    changed = True

    for qual, summ in summaries.items():
        closure = sealed_closure(summ, inter.get(qual, {}))
        for mut in summ.mutations:
            fact = sealed_lookup(closure, mut.root)
            if fact is None:
                continue
            yield Violation(
                "DOOC010", summ.info.path, mut.line, mut.col,
                f"{mut.detail} mutates a sealed zero-copy view in "
                f"{summ.info.qualname} (sealed origin: {fact.origin}"
                f"{_fmt_path(fact)}); sealed buffers are published "
                "immutable — copy first or route through a write grant",
            )


# -- DOOC011: static lock-order cycles ----------------------------------------


@dataclass(frozen=True)
class _EdgeWitness:
    path: str
    line: int
    text: str


@register_deep(
    "DOOC011",
    "static-lock-order-cycle",
    "held->acquired lock edges (with-nesting propagated across calls) "
    "form a cycle; reported with a call-path witness",
)
def check_static_lock_order(program: "Program") -> Iterator[Violation]:
    graph = program.graph
    summaries = program.summaries

    # locks (transitively) acquired below each function, with a witness
    # chain: qual -> {lock key: (path, line, call chain)}
    lock_sites: dict[str, dict[str, tuple[str, int, tuple[str, ...]]]] = {
        qual: {acq.key: (summ.info.path, acq.line, ())
               for acq in summ.acquires}
        for qual, summ in summaries.items()
    }
    changed = True
    rounds = 0
    while changed and rounds < _MAX_ROUNDS:
        changed = False
        rounds += 1
        for qual, summ in summaries.items():
            mine = lock_sites[qual]
            for ev in summ.calls:
                callee = graph.resolve(ev.call, summ.info)
                if callee is None or callee.qualname not in lock_sites:
                    continue
                hop = (f"{qual} -> {callee.qualname} "
                       f"({summ.info.path}:{ev.line})")
                for key, (p, line, chain) in lock_sites[
                        callee.qualname].items():
                    if key not in mine:
                        mine[key] = (p, line, (hop, *chain))
                        changed = True

    edges: dict[tuple[str, str], _EdgeWitness] = {}

    def add_edge(held: str, taken: str, witness: _EdgeWitness) -> None:
        if held != taken:
            edges.setdefault((held, taken), witness)

    for qual, summ in summaries.items():
        for acq in summ.acquires:
            for held in acq.held:
                add_edge(held, acq.key, _EdgeWitness(
                    summ.info.path, acq.line,
                    f"{held} held while {acq.key} acquired in {qual} "
                    f"({summ.info.path}:{acq.line})"))
        for ev in summ.calls:
            if not ev.held:
                continue
            callee = graph.resolve(ev.call, summ.info)
            if callee is None or callee.qualname not in lock_sites:
                continue
            for key, (p, line, chain) in lock_sites[
                    callee.qualname].items():
                via = (" via " + " -> ".join(chain)) if chain else ""
                for held in ev.held:
                    add_edge(held, key, _EdgeWitness(
                        summ.info.path, ev.line,
                        f"{held} held in {qual} while calling "
                        f"{callee.qualname} ({summ.info.path}:{ev.line})"
                        f"{via}; {key} acquired at {p}:{line}"))

    cycle = _find_cycle({e: None for e in edges})
    seen_cycles: set[frozenset[str]] = set()
    while cycle is not None:
        sig = frozenset(cycle)
        if sig in seen_cycles:  # pragma: no cover - defensive
            break
        seen_cycles.add(sig)
        lines = ["static lock-order cycle: " + " -> ".join(cycle)]
        anchor: _EdgeWitness | None = None
        for held, taken in zip(cycle, cycle[1:]):
            w = edges.get((held, taken))
            if w is not None:
                lines.append(w.text)
                anchor = anchor or w
        if anchor is None:  # pragma: no cover - defensive
            break
        yield Violation("DOOC011", anchor.path, anchor.line, 0,
                        "; ".join(lines))
        # break the reported cycle and look for independent ones
        for held, taken in zip(cycle, cycle[1:]):
            edges.pop((held, taken), None)
        cycle = _find_cycle({e: None for e in edges})


def _find_cycle(edges: dict[tuple[str, str], object]) -> list[str] | None:
    """A lock-key cycle (first node repeated at the end), or None."""
    succs: dict[str, list[str]] = {}
    for held, taken in edges:
        succs.setdefault(held, []).append(taken)
    WHITE, GREY, BLACK = 0, 1, 2
    color: dict[str, int] = {}
    parent: dict[str, str] = {}

    def dfs(node: str) -> list[str] | None:
        color[node] = GREY
        for nxt in sorted(succs.get(node, [])):
            state = color.get(nxt, WHITE)
            if state == GREY:
                cycle = [node]
                cur = node
                while cur != nxt:
                    cur = parent[cur]
                    cycle.append(cur)
                cycle.reverse()
                cycle.append(nxt)
                # rotate so the cycle starts at its smallest node and
                # reads held -> taken along real edges
                body = cycle[:-1]
                pivot = body.index(min(body))
                body = body[pivot:] + body[:pivot]
                return [*body, body[0]]
            if state == WHITE:
                parent[nxt] = node
                found = dfs(nxt)
                if found:
                    return found
        color[node] = BLACK
        return None

    for node in sorted(succs):
        if color.get(node, WHITE) == WHITE:
            found = dfs(node)
            if found:
                return found
    return None


# -- DOOC012: interprocedural effect drop -------------------------------------


def _effect_names(summ, effect_returning: dict[str, str],
                  graph) -> set[str]:
    """Local names that carry a ``list[Effect]`` value."""
    eff: set[str] = set()
    changed = True
    while changed:
        changed = False
        for tgt, src in summ.aliases:
            if tgt in eff:
                continue
            if src == _EFFECTS_TOKEN or src in eff:
                eff.add(tgt)
                changed = True
        for name, call, _line, _col in summ.assigned_calls:
            if name in eff:
                continue
            callee = graph.resolve(call, summ.info)
            if callee is not None and callee.qualname in effect_returning:
                eff.add(name)
                changed = True
    return eff


@register_deep(
    "DOOC012",
    "interprocedural-effect-drop",
    "call to a function that (transitively) returns LocalStore "
    "list[Effect] used as a bare statement or bound but never pumped",
)
def check_effect_drop(program: "Program") -> Iterator[Violation]:
    graph = program.graph
    summaries = program.summaries

    effect_returning: dict[str, str] = {}
    changed = True
    rounds = 0
    while changed and rounds < _MAX_ROUNDS:
        changed = False
        rounds += 1
        for qual, summ in summaries.items():
            if qual in effect_returning:
                continue
            why: str | None = None
            if summ.returns_effects_direct:
                why = "wraps a LocalStore effect call"
            if why is None:
                for call in summ.returned_calls:
                    callee = graph.resolve(call, summ.info)
                    if (callee is not None and callee.qualname != qual
                            and callee.qualname in effect_returning):
                        why = f"returns {callee.qualname}()"
                        break
            if why is None:
                eff = _effect_names(summ, effect_returning, graph)
                if summ.returned_roots & eff:
                    why = "returns an accumulated effect list"
            if why is not None:
                effect_returning[qual] = why
                changed = True

    for qual, summ in summaries.items():
        for call, line, col in summ.bare_calls:
            if is_effectful_call(call):
                continue  # the direct form is DOOC002's finding
            callee = graph.resolve(call, summ.info)
            if (callee is None or callee.qualname == qual
                    or callee.qualname not in effect_returning):
                continue
            yield Violation(
                "DOOC012", summ.info.path, line, col,
                f"result of {callee.name}() discarded in {qual}; it "
                f"{effect_returning[callee.qualname]} — the returned "
                "list[Effect] must be executed by the driver",
            )
        for name, call, line, col in summ.assigned_calls:
            if name != "_" and name in summ.loaded_names:
                continue
            callee = graph.resolve(call, summ.info)
            wraps: str | None = None
            if is_effectful_call(call):
                wraps = "is a direct LocalStore effect call"
            elif (callee is not None and callee.qualname != qual
                  and callee.qualname in effect_returning):
                wraps = effect_returning[callee.qualname]
            if wraps is None:
                continue
            yield Violation(
                "DOOC012", summ.info.path, line, col,
                f"effect list bound to {name!r} in {qual} but never "
                f"pumped ({wraps}); execute the effects or return them",
            )
