"""Whole-program dataflow analysis for the DOoC protocol (`lint --deep`).

Where :mod:`repro.analysis.rules` checks one function at a time, this
package builds a program-level view — a module-aware call graph
(:mod:`~repro.analysis.flow.callgraph`) plus per-function alias/escape
summaries (:mod:`~repro.analysis.flow.dataflow`) — and runs the three
interprocedural rules (:mod:`~repro.analysis.flow.rules_deep`):

* **DOOC010** sealed-view mutation escape,
* **DOOC011** static lock-order cycles with call-path witnesses,
* **DOOC012** interprocedural Effect-list drops.

Entry points: :func:`analyze_sources` for in-memory snippets (tests) and
:func:`deep_lint_paths` for file trees (the ``--deep`` CLI flag).  Both
honour ``# dooc: noqa[CODE]`` suppressions and — unless ``strict`` or an
explicit ``select`` is given — the same per-directory relaxations as the
per-file pass.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field
from pathlib import Path
from collections.abc import Iterable

from repro.analysis.flow.callgraph import CallGraph
from repro.analysis.flow.dataflow import FunctionSummary, summarize
from repro.analysis.lint import (
    DEEP_RULES,
    Violation,
    _active_rules,
    _path_relaxations,
    _suppressed,
    _suppressions,
    iter_python_files,
)

__all__ = ["Program", "build_program", "analyze_sources", "deep_lint_paths"]


@dataclass
class Program:
    """The whole-program index the deep rules run over."""

    graph: CallGraph
    #: qualname -> dataflow summary
    summaries: dict[str, FunctionSummary] = field(default_factory=dict)
    #: path -> raw source (for noqa suppression)
    sources: dict[str, str] = field(default_factory=dict)


def build_program(sources: dict[str, str]) -> Program:
    """Parse ``{path: source}`` and build the call graph + summaries.

    Unparseable files are skipped silently — the per-file pass already
    reports them as ``DOOC000``.
    """
    trees: dict[str, ast.Module] = {}
    for path, text in sources.items():
        try:
            trees[path] = ast.parse(text, filename=path)
        except SyntaxError:
            continue
    graph = CallGraph.build(trees)
    program = Program(graph, sources=dict(sources))
    for qual, info in graph.functions.items():
        program.summaries[qual] = summarize(info, graph)
    return program


def analyze_sources(sources: dict[str, str], *,
                    select: Iterable[str] | None = None,
                    ignore: Iterable[str] | None = None,
                    strict: bool = False) -> list[Violation]:
    """Run the deep rules over in-memory sources; returns sorted,
    unsuppressed violations."""
    # Registration side effect, same pattern as the per-file rules.
    import repro.analysis.flow.rules_deep  # noqa: F401

    program = build_program(sources)
    noqa = {path: _suppressions(text) for path, text in sources.items()}
    out: list[Violation] = []
    for rule in _active_rules(DEEP_RULES, select, ignore):
        for v in rule.check(program):
            if _suppressed(v, noqa.get(v.path, {})):
                continue
            if (not strict and select is None
                    and v.code in _path_relaxations(Path(v.path))):
                continue
            out.append(v)
    out.sort(key=lambda v: (v.path, v.line, v.col, v.code))
    return _dedupe(out)


def deep_lint_paths(paths: Iterable["Path | str"], *,
                    select: Iterable[str] | None = None,
                    ignore: Iterable[str] | None = None,
                    strict: bool = False) -> list[Violation]:
    """Run the deep rules over every ``.py`` file under ``paths``.

    The whole file set forms ONE program: a sealed view produced in
    ``src/repro/core`` and mutated in ``examples/`` is still caught.
    """
    sources = {
        str(p): p.read_text(encoding="utf-8")
        for p in iter_python_files(paths)
    }
    return analyze_sources(sources, select=select, ignore=ignore,
                           strict=strict)


def _dedupe(violations: list[Violation]) -> list[Violation]:
    seen: set[tuple[str, str, int, int]] = set()
    out: list[Violation] = []
    for v in violations:
        key = (v.code, v.path, v.line, v.col)
        if key not in seen:
            seen.add(key)
            out.append(v)
    return out
