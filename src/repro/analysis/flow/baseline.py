"""Accepted-findings baseline for ``repro lint``.

A baseline lets a new rule land with known findings acknowledged instead
of blocking CI: ``repro lint --deep --write-baseline`` records the
current findings in ``.dooc-baseline.json``; later runs (``--baseline``,
on by default when the file exists) subtract them and fail only on *new*
findings.  Every baselined entry should carry a justification comment in
the committed file's ``reason`` slot.

Fingerprints are ``sha1(code | path | digit-stripped message)``: stable
across pure line drift (the line number is stored for humans only) but
invalidated when the rule's message for the finding genuinely changes —
at which point the finding deserves a fresh look anyway.
"""

from __future__ import annotations

import hashlib
import json
import re
from pathlib import Path
from collections.abc import Iterable

from repro.analysis.lint import Violation

__all__ = ["DEFAULT_BASELINE", "fingerprint", "load_baseline",
           "write_baseline", "apply_baseline"]

DEFAULT_BASELINE = ".dooc-baseline.json"

_DIGITS = re.compile(r"\d+")


def fingerprint(v: Violation) -> str:
    path = v.path.replace("\\", "/").lstrip("./")
    key = f"{v.code}|{path}|{_DIGITS.sub('', v.message)}"
    return hashlib.sha1(key.encode("utf-8")).hexdigest()[:16]


def load_baseline(path: Path | str) -> set[str]:
    """Fingerprints in a baseline file; an absent file is an empty set."""
    p = Path(path)
    if not p.exists():
        return set()
    payload = json.loads(p.read_text(encoding="utf-8"))
    return {entry["fingerprint"] for entry in payload.get("findings", [])}


def write_baseline(path: Path | str, violations: Iterable[Violation],
                   *, reason: str = "accepted pre-existing finding") -> int:
    """Write ``violations`` as the new baseline; returns the entry count."""
    findings = [
        {
            "code": v.code,
            "path": v.path.replace("\\", "/").lstrip("./"),
            "line": v.line,
            "fingerprint": fingerprint(v),
            "message": v.message,
            "reason": reason,
        }
        for v in violations
    ]
    payload = {"version": 1, "findings": findings}
    Path(path).write_text(json.dumps(payload, indent=2) + "\n",
                          encoding="utf-8")
    return len(findings)


def apply_baseline(violations: list[Violation],
                   accepted: set[str]) -> tuple[list[Violation], int]:
    """(non-baselined violations, count of suppressed findings)."""
    if not accepted:
        return violations, 0
    kept = [v for v in violations if fingerprint(v) not in accepted]
    return kept, len(violations) - len(kept)
