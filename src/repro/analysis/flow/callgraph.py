"""Module-aware call graph for the whole-program lint pass.

The deep rules (DOOC010..DOOC012) need to follow a value — a sealed
NumPy view, a held lock set, a ``list[Effect]`` return — across function
boundaries.  This module builds the index that makes that possible: every
function and method in the analyzed tree gets a *qualified name*
(``repro.core.storage.LocalStore.release``), every module gets an import
table, and :meth:`CallGraph.resolve` maps a call expression in one
function to the :class:`FunctionInfo` it (probably) invokes.

Resolution is deliberately conservative and purely static:

* bare names resolve through module-local definitions and the import
  table;
* ``self.m(...)`` resolves to method ``m`` on the enclosing class (one
  class, no MRO walk);
* ``alias.attr(...)`` resolves when ``alias`` is an imported module or
  an imported name;
* any other attribute call falls back to *unique-name* resolution: it
  resolves only when exactly one function in the whole program bears
  that name and the name is not on the ambient denylist (``run``,
  ``read``, ``write``, ... — names too generic to pin to one callee).

Unresolved calls are simply dropped from the graph; the deep rules stay
sound-for-what-they-see rather than guessing.  Nested ``def``s and
lambdas are not indexed (their bodies do not run inline), and dynamic
dispatch through containers or ``getattr`` is invisible — both limits
are documented in docs/ANALYSIS.md.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field

__all__ = ["FunctionInfo", "ModuleInfo", "CallGraph", "module_name_for_path"]

#: method/function names too generic for unique-name fallback resolution —
#: resolving `fh.write(...)` to some random `write` def would poison the
#: lock/effect propagation with false edges.
AMBIENT_NAMES = frozenset({
    "run", "read", "write", "open", "close", "get", "set", "put", "pop",
    "send", "recv", "join", "wait", "acquire", "release", "start", "stop",
    "append", "extend", "update", "clear", "add", "remove", "copy", "sort",
    "items", "keys", "values", "main", "check", "process", "flush", "next",
    "submit", "result", "cancel", "notify", "format", "parse", "load",
    "save", "reset", "info", "debug", "warning", "error",
})


def module_name_for_path(path: str) -> str:
    """Dotted module name for a file path (``src/repro/core/shm.py`` ->
    ``repro.core.shm``); falls back to the dotted path for files outside a
    ``src`` root (fixtures, tests)."""
    parts = list(path.replace("\\", "/").strip("/").split("/"))
    if parts[-1].endswith(".py"):
        parts[-1] = parts[-1][:-3]
    if parts[-1] == "__init__":
        parts.pop()
    if "src" in parts:
        parts = parts[parts.index("src") + 1:]
    parts = [p for p in parts if p and p not in (".", "..")]
    return ".".join(parts) if parts else "<module>"


@dataclass
class FunctionInfo:
    """One indexed function or method."""

    qualname: str            # module.Class.name or module.name
    module: str
    cls: str | None
    name: str
    path: str
    node: ast.FunctionDef | ast.AsyncFunctionDef
    params: list[str] = field(default_factory=list)

    @property
    def method_params(self) -> list[str]:
        """Parameters as seen by an attribute-call (``self``/``cls`` bound)."""
        if self.cls and self.params and self.params[0] in ("self", "cls"):
            return self.params[1:]
        return self.params


@dataclass
class ModuleInfo:
    """One parsed module: its tree, import table and local definitions."""

    name: str
    path: str
    tree: ast.Module
    #: local alias -> dotted target ("np" -> "numpy",
    #: "attach_view" -> "repro.core.shm.attach_view")
    imports: dict[str, str] = field(default_factory=dict)


def _collect_imports(tree: ast.Module) -> dict[str, str]:
    table: dict[str, str] = {}
    for node in ast.walk(tree):
        if isinstance(node, ast.Import):
            for alias in node.names:
                table[alias.asname or alias.name.split(".")[0]] = alias.name
        elif isinstance(node, ast.ImportFrom) and node.module and node.level == 0:
            for alias in node.names:
                table[alias.asname or alias.name] = f"{node.module}.{alias.name}"
    return table


def _params(node: ast.FunctionDef | ast.AsyncFunctionDef) -> list[str]:
    args = node.args
    return [a.arg for a in (*args.posonlyargs, *args.args)]


def dotted_expr(node: ast.AST) -> str | None:
    """``a.b.c`` -> "a.b.c", ``name`` -> "name"; anything else -> None."""
    if isinstance(node, ast.Name):
        return node.id
    if isinstance(node, ast.Attribute):
        base = dotted_expr(node.value)
        return None if base is None else f"{base}.{node.attr}"
    return None


class CallGraph:
    """Whole-program function index + static call resolution."""

    def __init__(self) -> None:
        self.modules: dict[str, ModuleInfo] = {}
        self.functions: dict[str, FunctionInfo] = {}
        self._by_name: dict[str, list[FunctionInfo]] = {}

    # -- construction --------------------------------------------------------

    @classmethod
    def build(cls, sources: dict[str, ast.Module]) -> "CallGraph":
        """Index ``{path: parsed module}`` into a call graph."""
        graph = cls()
        for path, tree in sources.items():
            mod = ModuleInfo(module_name_for_path(path), path, tree,
                             _collect_imports(tree))
            graph.modules[mod.name] = mod
            graph._index_module(mod)
        return graph

    def _index_module(self, mod: ModuleInfo) -> None:
        def add(node, cls_name: str | None) -> None:
            qual = (f"{mod.name}.{cls_name}.{node.name}" if cls_name
                    else f"{mod.name}.{node.name}")
            info = FunctionInfo(qual, mod.name, cls_name, node.name,
                                mod.path, node, _params(node))
            self.functions[qual] = info
            self._by_name.setdefault(node.name, []).append(info)

        for stmt in mod.tree.body:
            if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef)):
                add(stmt, None)
            elif isinstance(stmt, ast.ClassDef):
                for sub in stmt.body:
                    if isinstance(sub, (ast.FunctionDef,
                                        ast.AsyncFunctionDef)):
                        add(sub, stmt.name)

    # -- resolution ----------------------------------------------------------

    def _lookup(self, qualname: str) -> FunctionInfo | None:
        return self.functions.get(qualname)

    def resolve(self, call: ast.Call,
                caller: FunctionInfo) -> FunctionInfo | None:
        """The function a call expression invokes, or None if unknown."""
        func = call.func
        mod = self.modules.get(caller.module)
        imports = mod.imports if mod else {}

        if isinstance(func, ast.Name):
            name = func.id
            hit = self._lookup(f"{caller.module}.{name}")
            if hit is not None:
                return hit
            target = imports.get(name)
            if target is not None:
                hit = self._lookup(target)
                if hit is not None:
                    return hit
                # The import names a module root that doesn't match how
                # the file set was keyed (absolute paths, fixtures); a
                # unique definition of the name is still unambiguous.
            return self._unique(name)

        if isinstance(func, ast.Attribute):
            # self.m() / cls.m(): the enclosing class's method.
            base = dotted_expr(func.value)
            if base in ("self", "cls") and caller.cls is not None:
                hit = self._lookup(
                    f"{caller.module}.{caller.cls}.{func.attr}")
                if hit is not None:
                    return hit
            # alias.attr() through the import table (module or name import).
            if base is not None:
                head = base.split(".")[0]
                target = imports.get(head)
                if target is not None:
                    dotted = base.replace(head, target, 1) + f".{func.attr}"
                    hit = self._lookup(dotted)
                    if hit is not None:
                        return hit
            return self._unique(func.attr)
        return None

    def _unique(self, name: str) -> FunctionInfo | None:
        if name in AMBIENT_NAMES or name.startswith("__"):
            return None
        hits = self._by_name.get(name, [])
        return hits[0] if len(hits) == 1 else None

    def bind_args(self, call: ast.Call,
                  callee: FunctionInfo) -> list[tuple[ast.expr, str]]:
        """(argument expression, parameter name) pairs for a resolved call.

        Attribute calls bind against :attr:`FunctionInfo.method_params`
        (``self`` consumed by the receiver); plain-name calls against the
        full parameter list.  ``*args``/``**kwargs`` and excess arguments
        are dropped — the analysis only needs the named positions.
        """
        params = (callee.method_params
                  if isinstance(call.func, ast.Attribute) else callee.params)
        pairs: list[tuple[ast.expr, str]] = []
        for i, arg in enumerate(call.args):
            if isinstance(arg, ast.Starred) or i >= len(params):
                break
            pairs.append((arg, params[i]))
        all_params = set(callee.params)
        for kw in call.keywords:
            if kw.arg is not None and kw.arg in all_params:
                pairs.append((kw.value, kw.arg))
        return pairs
