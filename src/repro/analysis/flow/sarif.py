"""SARIF 2.1.0 export for ``repro lint`` findings.

SARIF is the interchange format CI code-scanning UIs ingest; emitting it
lets the deep-lint job upload its findings as a reviewable artifact
(`repro lint --deep --sarif lint.sarif`).  Only the fields consumers
actually read are emitted: the tool driver with its rule catalog, and one
``result`` per violation with a physical location.
"""

from __future__ import annotations

import json
from collections.abc import Iterable, Mapping

from repro.analysis.lint import Rule, Violation

__all__ = ["sarif_report", "render_sarif"]

_SCHEMA = ("https://raw.githubusercontent.com/oasis-tcs/sarif-spec/master/"
           "Schemata/sarif-schema-2.1.0.json")


def sarif_report(violations: Iterable[Violation],
                 rules: Mapping[str, Rule]) -> dict:
    """A SARIF 2.1.0 log dict for the given findings."""
    driver_rules = [
        {
            "id": code,
            "name": rule.name,
            "shortDescription": {"text": rule.description},
        }
        for code, rule in sorted(rules.items())
    ]
    results = [
        {
            "ruleId": v.code,
            "level": "error",
            "message": {"text": v.message},
            "locations": [{
                "physicalLocation": {
                    "artifactLocation": {
                        "uri": v.path.replace("\\", "/").lstrip("./"),
                    },
                    "region": {
                        "startLine": max(v.line, 1),
                        "startColumn": v.col + 1,
                    },
                },
            }],
        }
        for v in violations
    ]
    return {
        "$schema": _SCHEMA,
        "version": "2.1.0",
        "runs": [{
            "tool": {
                "driver": {
                    "name": "repro-lint",
                    "informationUri": "docs/ANALYSIS.md",
                    "rules": driver_rules,
                },
            },
            "results": results,
        }],
    }


def render_sarif(violations: Iterable[Violation],
                 rules: Mapping[str, Rule]) -> str:
    return json.dumps(sarif_report(violations, rules), indent=2) + "\n"
