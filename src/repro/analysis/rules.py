"""Repo-specific lint rules for the DOoC protocol discipline.

Codes (stable; see docs/ANALYSIS.md for the catalog with rationale):

========  ==================================================================
DOOC001   ticket leak: a ``request_read``/``request_write``/``_request_all``
          result must reach a release on every path (``try/finally`` or an
          exception handler that releases/aborts), unless ownership is
          handed off to the driver protocol by tagging the ticket
          (``ticket.tag = ...``).
DOOC002   dropped effects: a ``LocalStore`` method returning
          ``list[Effect]`` called as a bare statement — the effects were
          never executed, so loads/spills/grants silently vanish.
DOOC003   blocking call under a lock: ``time.sleep``, ``open``/``os.open``,
          an untimed ``.wait()`` or ``.join()``, or ``subprocess`` work
          inside a ``with <lock>:`` body stalls every thread contending on
          that lock.
DOOC004   unknown trace event: a string literal passed as the event name to
          ``Tracer.instant/complete/counter/span`` that is not part of the
          central vocabulary (:mod:`repro.obs.vocab`).
DOOC005   non-atomic durable write: a bare ``open(..., "w"/"wb")``,
          ``.write_bytes()`` or ``.write_text()`` on a ``.blk``/``.ckpt``
          path.  Checkpoint payloads and manifests are recovery inputs —
          a torn write silently poisons restart, so they must go through
          ``repro.util.atomicio.atomic_write`` (temp + fsync + rename).
DOOC006   raw shared memory: ``SharedMemory(...)`` constructed outside
          ``repro.core.shm``.  Segments made elsewhere escape the pool's
          lease refcounts, generation stamps and unlink sweeps — they
          leak ``/dev/shm`` entries and break the crash-cleanup
          invariant.  Allocate via ``SegmentPool`` / attach via
          ``attach_view`` instead.
========  ==================================================================

The rules are deliberately lexical (single-function, no dataflow): they
catch the protocol mistakes that actually bit this repo while staying fast
and explainable.  Known-safe deviations are suppressed at the call site
with ``# dooc: noqa[CODE]`` and a justification comment.
"""

from __future__ import annotations

import ast
from collections.abc import Iterator

from repro.analysis.lint import Violation, register
from repro.obs.vocab import EVENT_NAMES

__all__ = [
    "REQUEST_FUNCS",
    "RELEASE_FUNCS",
    "EFFECT_FUNCS",
    "TRACER_METHODS",
]

#: callables whose result carries tickets that must be released
REQUEST_FUNCS = frozenset({
    "request_read", "request_write", "request_all", "_request_all",
})

#: callables that return, release or abandon tickets on a failure path
RELEASE_FUNCS = frozenset({
    "release", "release_all", "_release_all",
    "abandon", "abandon_write", "_abort", "abort",
})

#: LocalStore methods returning ``list[Effect]`` the caller must execute
EFFECT_FUNCS = frozenset({
    "release", "prefetch", "delete_array",
    "on_loaded", "on_spilled", "on_remote_data",
    "on_load_failed", "on_fetch_failed", "on_spill_failed",
    "abandon_write", "rehome_local", "rehome_remote",
    "_pump_allocs", "_wake_readers", "_reclaim", "_fail_waiters",
    "_drive_read", "_alloc_then", "_purge_blocks",
})

#: Tracer emit methods whose 4th positional argument is the event name
TRACER_METHODS = frozenset({"instant", "complete", "counter", "span"})

_TRACER_RECEIVERS = frozenset({"tracer", "_tracer"})
_LOCKISH_FRAGMENTS = ("lock", "cond", "mutex", "sem")


# -- small AST helpers -------------------------------------------------------


def _terminal_name(node: ast.AST) -> str | None:
    """``a.b.c`` -> "c", ``name`` -> "name", anything else -> None."""
    if isinstance(node, ast.Attribute):
        return node.attr
    if isinstance(node, ast.Name):
        return node.id
    return None


def _call_name(call: ast.Call) -> str | None:
    return _terminal_name(call.func)


def _receiver_name(call: ast.Call) -> str | None:
    if isinstance(call.func, ast.Attribute):
        return _terminal_name(call.func.value)
    return None


def _is_lockish(name: str | None) -> bool:
    return name is not None and any(f in name.lower()
                                    for f in _LOCKISH_FRAGMENTS)


def _scopes(tree: ast.Module) -> Iterator[list[ast.stmt]]:
    """Yield each lexical scope's statement list (module + every def)."""
    yield tree.body
    for node in ast.walk(tree):
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
            yield node.body


def _walk_scope(body: list[ast.stmt]) -> Iterator[ast.stmt]:
    """Statements of a scope in document order, skipping nested defs."""
    for stmt in body:
        if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef,
                             ast.ClassDef)):
            continue
        yield stmt
        for field in ("body", "orelse", "finalbody"):
            yield from _walk_scope(getattr(stmt, field, []) or [])
        for handler in getattr(stmt, "handlers", []) or []:
            yield from _walk_scope(handler.body)


def _calls_in(node: ast.AST) -> Iterator[ast.Call]:
    """Every call under ``node``, not descending into nested defs/lambdas."""
    for child in ast.iter_child_nodes(node):
        if isinstance(child, (ast.FunctionDef, ast.AsyncFunctionDef,
                              ast.ClassDef, ast.Lambda)):
            continue
        yield from _calls_in(child)
    if isinstance(node, ast.Call):
        yield node


def _contains_release(nodes: list[ast.stmt]) -> bool:
    return any(_call_name(call) in RELEASE_FUNCS
               for stmt in nodes for call in _calls_in(stmt))


# -- DOOC001: ticket leaks ---------------------------------------------------


def _guarding_try(stmt_stack: list[ast.stmt]) -> bool:
    """Is the innermost statement protected by a releasing try?

    A :class:`ast.Try` ancestor guards its body when its ``finally`` block
    or one of its exception handlers reaches a release/abort call.
    """
    for ancestor in stmt_stack:
        if not isinstance(ancestor, ast.Try):
            continue
        if _contains_release(ancestor.finalbody):
            return True
        for handler in ancestor.handlers:
            if _contains_release(handler.body):
                return True
    return False


def _bound_ticket_names(targets: list[ast.expr]) -> list[str]:
    """Names that receive the ticket(s) from a request call."""
    out: list[str] = []
    for target in targets:
        if isinstance(target, ast.Name):
            out.append(target.id)
        elif isinstance(target, (ast.Tuple, ast.List)) and target.elts:
            # `(ticket, effects) = store.request_read(...)`: the ticket is
            # the first element by the LocalStore API shape.
            first = target.elts[0]
            if isinstance(first, ast.Name):
                out.append(first.id)
    return out


def _tagged_names(body: list[ast.stmt]) -> set[str]:
    """Ticket variables handed to the driver protocol via ``x.tag = ...``."""
    out: set[str] = set()
    for stmt in _walk_scope(body):
        if isinstance(stmt, ast.Assign):
            for target in stmt.targets:
                if (isinstance(target, ast.Attribute) and target.attr == "tag"
                        and isinstance(target.value, ast.Name)):
                    out.add(target.value.id)
    return out


@register(
    "DOOC001",
    "ticket-leak",
    "ticket request result must be released on all paths "
    "(try/finally, a releasing exception handler, or a ticket.tag handoff)",
)
def check_ticket_leak(tree: ast.Module, path: str) -> Iterator[Violation]:
    for body in _scopes(tree):
        tagged = _tagged_names(body)

        def visit(stmts: list[ast.stmt],
                  stack: list[ast.stmt]) -> Iterator[Violation]:
            for stmt in stmts:
                if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef,
                                     ast.ClassDef)):
                    continue
                request: ast.Call | None = None
                names: list[str] = []
                if isinstance(stmt, ast.Assign) and isinstance(
                        stmt.value, ast.Call):
                    if _call_name(stmt.value) in REQUEST_FUNCS:
                        request = stmt.value
                        names = _bound_ticket_names(stmt.targets)
                elif isinstance(stmt, ast.Expr) and isinstance(
                        stmt.value, ast.Call):
                    if _call_name(stmt.value) in REQUEST_FUNCS:
                        request = stmt.value  # result discarded outright
                if request is not None:
                    handed_off = any(n in tagged for n in names)
                    if not handed_off and not _guarding_try(stack + [stmt]):
                        fn = _call_name(request)
                        yield Violation(
                            "DOOC001", path, stmt.lineno, stmt.col_offset,
                            f"result of {fn}() is not guarded: wrap the "
                            "use in try/finally (or an exception handler "
                            "that releases/aborts), or hand the ticket to "
                            "the driver via `ticket.tag = ...`",
                        )
                stack.append(stmt)
                for field in ("body", "orelse", "finalbody"):
                    yield from visit(getattr(stmt, field, []) or [], stack)
                for handler in getattr(stmt, "handlers", []) or []:
                    yield from visit(handler.body, stack)
                stack.pop()

        yield from visit(body, [])


# -- DOOC002: dropped Effect lists -------------------------------------------


@register(
    "DOOC002",
    "dropped-effects",
    "LocalStore call returning list[Effect] used as a bare statement; "
    "the effects must be executed by the driver",
)
def check_dropped_effects(tree: ast.Module, path: str) -> Iterator[Violation]:
    for body in _scopes(tree):
        for stmt in _walk_scope(body):
            if not (isinstance(stmt, ast.Expr)
                    and isinstance(stmt.value, ast.Call)):
                continue
            call = stmt.value
            if not isinstance(call.func, ast.Attribute):
                continue  # only store *methods* return effect lists
            name = call.func.attr
            if name not in EFFECT_FUNCS:
                continue
            receiver = _receiver_name(call)
            if _is_lockish(receiver):
                continue  # `lock.release()` is threading, not storage
            if name == "release" and (receiver is None
                                      or "store" not in receiver.lower()):
                # `release` is the one effect method whose name collides
                # with threading locks and the DES resource primitives;
                # only store-ish receivers (`store`, `self.store`, ...)
                # return Effect lists.
                continue
            yield Violation(
                "DOOC002", path, stmt.lineno, stmt.col_offset,
                f"return value of {name}() discarded; it is a list[Effect] "
                "the driver must execute (bind it and run the effects)",
            )


# -- DOOC003: blocking calls under a lock ------------------------------------


def _blocking_reason(call: ast.Call) -> str | None:
    name = _call_name(call)
    receiver = _receiver_name(call)
    if name == "sleep" and (receiver in (None, "time")):
        return "time.sleep() under a lock stalls every waiter"
    if name == "open" and receiver in (None, "os", "io", "gzip"):
        return "file open under a lock serializes I/O behind the lock"
    if receiver == "subprocess":
        return "subprocess work under a lock blocks all contenders"
    if name == "wait" and not call.args and not any(
            kw.arg == "timeout" for kw in call.keywords):
        return ("untimed .wait() under a lock cannot observe runtime "
                "failure; pass a timeout")
    if name == "join" and not call.args and not any(
            kw.arg == "timeout" for kw in call.keywords):
        if receiver is None or _is_lockish(receiver):
            return None
        # str.join always takes an iterable argument, so a no-arg join
        # is a thread/process join.
        return "untimed .join() under a lock can deadlock"
    return None


@register(
    "DOOC003",
    "blocking-under-lock",
    "blocking call (sleep, file open, untimed wait/join, subprocess) "
    "inside a `with <lock>:` body",
)
def check_blocking_under_lock(tree: ast.Module,
                              path: str) -> Iterator[Violation]:
    for body in _scopes(tree):

        def visit(stmts: list[ast.stmt],
                  lock_depth: int) -> Iterator[Violation]:
            for stmt in stmts:
                if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef,
                                     ast.ClassDef)):
                    continue
                depth = lock_depth
                if isinstance(stmt, (ast.With, ast.AsyncWith)):
                    if any(_is_lockish(_terminal_name(item.context_expr))
                           for item in stmt.items):
                        depth += 1
                elif depth > 0:
                    for call in _calls_in(stmt):
                        reason = _blocking_reason(call)
                        if reason is not None:
                            yield Violation(
                                "DOOC003", path, call.lineno,
                                call.col_offset, reason)
                for field in ("body", "orelse", "finalbody"):
                    yield from visit(getattr(stmt, field, []) or [], depth)
                for handler in getattr(stmt, "handlers", []) or []:
                    yield from visit(handler.body, depth)

        yield from visit(body, 0)


# -- DOOC004: trace vocabulary ----------------------------------------------


def _is_tracer_receiver(func: ast.Attribute) -> bool:
    name = _terminal_name(func.value)
    return name in _TRACER_RECEIVERS


def _event_name_arg(call: ast.Call) -> ast.expr | None:
    """The event-name argument of instant/complete/counter/span calls."""
    for kw in call.keywords:
        if kw.arg == "name":
            return kw.value
    # signature: (node, lane, cat, name, ...)
    if len(call.args) >= 4:
        return call.args[3]
    return None


@register(
    "DOOC004",
    "unknown-trace-event",
    "event name literal is not in the central vocabulary "
    "(repro.obs.vocab.EVENTS)",
)
def check_trace_vocabulary(tree: ast.Module,
                           path: str) -> Iterator[Violation]:
    for node in ast.walk(tree):
        if not isinstance(node, ast.Call):
            continue
        func = node.func
        if not (isinstance(func, ast.Attribute)
                and func.attr in TRACER_METHODS
                and _is_tracer_receiver(func)):
            continue
        arg = _event_name_arg(node)
        if not (isinstance(arg, ast.Constant) and isinstance(arg.value, str)):
            continue  # dynamic names cannot be checked lexically
        if arg.value not in EVENT_NAMES:
            yield Violation(
                "DOOC004", path, arg.lineno, arg.col_offset,
                f"trace event {arg.value!r} is not in the central "
                "vocabulary; add it to repro.obs.vocab.EVENTS or use a "
                "registered name",
            )


# -- DOOC005: non-atomic durable writes --------------------------------------

#: filename fragments marking recovery-critical artifacts
_DURABLE_FRAGMENTS = (".blk", ".ckpt")

#: write modes of ``open`` that replace or extend a durable file
_WRITE_MODES = frozenset("wax")


def _mentions_durable(node: ast.AST) -> bool:
    return any(
        isinstance(n, ast.Constant) and isinstance(n.value, str)
        and any(f in n.value for f in _DURABLE_FRAGMENTS)
        for n in ast.walk(node)
    )


def _open_write_mode(call: ast.Call) -> bool:
    """Is this ``open(...)`` (or ``os.open``/``io.open``) opened to write?"""
    if _call_name(call) != "open":
        return False
    receiver = _receiver_name(call)
    if receiver not in (None, "os", "io"):
        return False
    mode: ast.expr | None = None
    if len(call.args) >= 2:
        mode = call.args[1]
    for kw in call.keywords:
        if kw.arg == "mode":
            mode = kw.value
    if not (isinstance(mode, ast.Constant) and isinstance(mode.value, str)):
        return False  # default mode is "r"; dynamic modes pass
    return any(c in _WRITE_MODES for c in mode.value)


@register(
    "DOOC005",
    "non-atomic-durable-write",
    "checkpoint/manifest/block (.blk/.ckpt) files must be written via "
    "repro.util.atomicio.atomic_write, not bare open()/write_bytes()",
)
def check_atomic_durable_writes(tree: ast.Module,
                                path: str) -> Iterator[Violation]:
    # The one legitimate bare writer is atomic_write itself (it writes the
    # temp file it later renames); its definition is exempt wholesale.
    exempt: set[int] = set()
    for node in ast.walk(tree):
        if (isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef))
                and node.name == "atomic_write"):
            exempt.update(id(n) for n in ast.walk(node))

    parents: dict[ast.AST, ast.AST] = {}
    for node in ast.walk(tree):
        for child in ast.iter_child_nodes(node):
            parents[child] = node

    def durable_context(call: ast.Call) -> bool:
        """The call itself, or its statement's header, names a durable
        artifact.  Compound statements only contribute their headers (a
        ``with`` body mentioning ``.blk`` must not taint an unrelated
        ``open`` in the ``with`` line)."""
        if _mentions_durable(call):
            return True
        node: ast.AST = call
        while node in parents and not isinstance(node, ast.stmt):
            node = parents[node]
        if isinstance(node, (ast.Assign, ast.AnnAssign, ast.AugAssign,
                             ast.Expr, ast.Return)):
            return _mentions_durable(node)
        if isinstance(node, (ast.With, ast.AsyncWith)):
            return any(_mentions_durable(item) for item in node.items)
        return False

    for node in ast.walk(tree):
        if not isinstance(node, ast.Call) or id(node) in exempt:
            continue
        writer: str | None = None
        if _open_write_mode(node):
            writer = "open"
        elif (isinstance(node.func, ast.Attribute)
              and node.func.attr in ("write_bytes", "write_text")):
            writer = node.func.attr
        if writer is None or not durable_context(node):
            continue
        yield Violation(
            "DOOC005", path, node.lineno, node.col_offset,
            f"{writer}() writes a durable .blk/.ckpt artifact in place; a "
            "crash mid-write poisons recovery — use "
            "repro.util.atomicio.atomic_write (temp + fsync + rename)",
        )


# -- DOOC006: raw shared-memory construction ---------------------------------

#: the one module allowed to construct SharedMemory (the pool itself)
_SHM_HOME = ("repro", "core", "shm.py")


def _is_shm_home(path: str) -> bool:
    parts = path.replace("\\", "/").split("/")
    return tuple(parts[-3:]) == _SHM_HOME


@register(
    "DOOC006",
    "raw-shared-memory",
    "SharedMemory() constructed outside repro.core.shm; segments must be "
    "allocated through SegmentPool / mapped through attach_view so leases, "
    "generations and unlink sweeps stay coherent",
)
def check_raw_shared_memory(tree: ast.Module, path: str) -> Iterator[Violation]:
    if _is_shm_home(path):
        return
    for node in ast.walk(tree):
        if not isinstance(node, ast.Call):
            continue
        if _call_name(node) != "SharedMemory":
            continue
        yield Violation(
            "DOOC006", path, node.lineno, node.col_offset,
            "raw SharedMemory(...) bypasses the segment pool's lease "
            "refcounts and unlink sweep (a crash leaks /dev/shm); use "
            "repro.core.shm.SegmentPool.allocate / attach_view",
        )


# -- DOOC007: direct compression-library use ---------------------------------

#: the one module allowed to import zlib/lzma/bz2 (the codec registry)
_CODECS_HOME = ("repro", "core", "codecs.py")

#: stdlib compression modules the codec pipeline wraps
_COMPRESSION_MODULES = ("zlib", "lzma", "bz2")


def _is_codecs_home(path: str) -> bool:
    parts = path.replace("\\", "/").split("/")
    return tuple(parts[-3:]) == _CODECS_HOME


@register(
    "DOOC007",
    "direct-compression-call",
    "zlib/lzma/bz2 used outside repro.core.codecs; compression must go "
    "through the codec registry so on-disk formats stay self-describing "
    "and DOOC_CODEC snapshot semantics hold",
)
def check_direct_compression(tree: ast.Module, path: str) -> Iterator[Violation]:
    if _is_codecs_home(path):
        return
    for node in ast.walk(tree):
        if isinstance(node, ast.Import):
            names = [a.name for a in node.names
                     if a.name.split(".")[0] in _COMPRESSION_MODULES]
        elif isinstance(node, ast.ImportFrom):
            root = (node.module or "").split(".")[0]
            names = [root] if root in _COMPRESSION_MODULES else []
        else:
            continue
        for name in names:
            yield Violation(
                "DOOC007", path, node.lineno, node.col_offset,
                f"direct {name} use bypasses the codec registry (headers "
                "would no longer name the codec and DOOC_CODEC would not "
                "apply); encode/decode through repro.core.codecs instead",
            )


# -- DOOC013: time.sleep in the job-server control plane -----------------------

#: directory whose modules must wait on Event/Condition, never sleep
_SERVER_HOME = ("repro", "server")


def _is_server_module(path: str) -> bool:
    parts = path.replace("\\", "/").split("/")
    return tuple(parts[-3:-1]) == _SERVER_HOME


@register(
    "DOOC013",
    "sleep-in-server",
    "time.sleep(...) inside repro/server; the job service's control plane "
    "must park on threading.Event/Condition waits so drains, deadlines and "
    "cancels can interrupt it — a sleeping thread ignores SIGTERM for the "
    "rest of its nap",
)
def check_server_sleep(tree: ast.Module, path: str) -> Iterator[Violation]:
    if not _is_server_module(path):
        return
    for node in ast.walk(tree):
        if not isinstance(node, ast.Call):
            continue
        fn = node.func
        named_sleep = (isinstance(fn, ast.Attribute) and fn.attr == "sleep"
                       and isinstance(fn.value, ast.Name)
                       and fn.value.id == "time")
        bare_sleep = isinstance(fn, ast.Name) and fn.id == "sleep"
        if not (named_sleep or bare_sleep):
            continue
        yield Violation(
            "DOOC013", path, node.lineno, node.col_offset,
            "time.sleep() in the job server blocks deadlines, preemption "
            "and SIGTERM drain for its full duration; wait on a "
            "threading.Event/Condition with a timeout instead",
        )
