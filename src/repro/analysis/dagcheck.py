"""Pre-execution validation of a task set.

:class:`~repro.core.dag.TaskDAG` already rejects malformed programs, but
it does so while the engine is mid-``run`` — and a cycle report that says
"some of these five tasks" leaves the user to find the loop by hand.
:func:`validate_tasks` runs the same checks *before any thread starts*
and names the exact failure:

* duplicate task names,
* double-written arrays (arrays are immutable; two writers is a race),
* reads of arrays nothing produces and nothing declared initial,
* dependency cycles, reported as the actual task path
  (``a -> b -> c -> a``), not a candidate set.

:class:`DagValidationError` subclasses
:class:`~repro.core.errors.SchedulingError` so callers (and tests) that
already catch the scheduler's errors keep working unchanged.
"""

from __future__ import annotations

from collections.abc import Iterable

from repro.core.errors import SchedulingError
from repro.core.task import TaskSpec

__all__ = ["DagValidationError", "validate_tasks", "find_task_cycle"]


class DagValidationError(SchedulingError):
    """A task set failed pre-execution validation, with a named diagnosis."""


def find_task_cycle(tasks: dict[str, TaskSpec],
                    producer: dict[str, str]) -> list[str] | None:
    """A task-name cycle (closed: first == last), or None if acyclic."""
    succs: dict[str, set[str]] = {name: set() for name in tasks}
    for t in tasks.values():
        for array in t.inputs:
            prod = producer.get(array)
            if prod is not None:
                succs[prod].add(t.name)

    WHITE, GREY, BLACK = 0, 1, 2
    color = dict.fromkeys(tasks, WHITE)
    parent: dict[str, str] = {}

    # Iterative DFS so pathological chains don't hit the recursion limit.
    for root in sorted(tasks):
        if color[root] != WHITE:
            continue
        stack: list[tuple[str, Iterable[str]]] = [(root, iter(sorted(succs[root])))]
        color[root] = GREY
        while stack:
            node, it = stack[-1]
            advanced = False
            for nxt in it:
                if color[nxt] == GREY:
                    cycle = [node]
                    cur = node
                    while cur != nxt:
                        cur = parent[cur]
                        cycle.append(cur)
                    cycle.reverse()
                    cycle.append(cycle[0])
                    return cycle
                if color[nxt] == WHITE:
                    color[nxt] = GREY
                    parent[nxt] = node
                    stack.append((nxt, iter(sorted(succs[nxt]))))
                    advanced = True
                    break
            if not advanced:
                color[node] = BLACK
                stack.pop()
    return None


def validate_tasks(tasks: Iterable[TaskSpec],
                   initial_arrays: Iterable[str]) -> None:
    """Raise :class:`DagValidationError` on the first structural defect."""
    initial = set(initial_arrays)
    by_name: dict[str, TaskSpec] = {}
    producer: dict[str, str] = {}

    for t in tasks:
        if t.name in by_name:
            raise DagValidationError(
                f"duplicate task name {t.name!r}: every task needs a "
                "unique name for scheduling and tracing")
        by_name[t.name] = t
        for array in t.outputs:
            if array in producer:
                raise DagValidationError(
                    f"array {array!r} is written by both "
                    f"{producer[array]!r} and {t.name!r}; arrays are "
                    "write-once — give the second result a new name")
            if array in initial:
                raise DagValidationError(
                    f"array {array!r} is declared initial but task "
                    f"{t.name!r} writes it; initial arrays are inputs only")
            producer[array] = t.name

    for t in by_name.values():
        for array in t.inputs:
            if array not in producer and array not in initial:
                raise DagValidationError(
                    f"task {t.name!r} reads array {array!r}, which no task "
                    "produces and which is not declared initial — the read "
                    "could never be satisfied")

    cycle = find_task_cycle(by_name, producer)
    if cycle is not None:
        raise DagValidationError(
            "task graph has a dependency cycle: "
            + " -> ".join(cycle)
            + "; no task on this loop can ever become ready")
