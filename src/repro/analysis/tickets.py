"""Ticket-lifecycle auditing for :class:`~repro.core.storage.LocalStore`.

The storage protocol promises that every granted ticket is eventually
``release``d (or ``abandon_write``n).  A leaked read ticket pins a block
in memory forever; a leaked write ticket wedges every later reader of the
interval.  Both bugs present as capacity pressure or a stall long after
the leaking call site returned.

:class:`TicketAuditor` records each grant and each release as the store
reports them (the store calls the hooks itself when ``store.auditor`` is
set, which the engine does under ``DOOC_CHECKERS=1``).  At engine
teardown :meth:`assert_clean` raises :class:`TicketLeakError` naming
every still-outstanding ticket — id, node, array interval, permission and
tag — so the leak is attributed at the run that introduced it instead of
the soak that hit the wall.

The auditor also asserts the zero-copy data-plane invariant at grant
time: a read grant must hand out a *non-writable* view
(:class:`WritableReadViewError` otherwise) — the property that makes
serving blocks to tasks and peers without defensive copies safe.
"""

from __future__ import annotations

import threading
from typing import TYPE_CHECKING

if TYPE_CHECKING:
    from repro.core.storage import Ticket

__all__ = ["TicketAuditor", "TicketLeakError", "WritableReadViewError"]


class TicketLeakError(AssertionError):
    """Granted tickets were never released or abandoned."""

    def __init__(self, message: str, leaked: list[Ticket]):
        super().__init__(message)
        self.leaked = leaked


class WritableReadViewError(AssertionError):
    """A read grant handed out a writable view (zero-copy unsound)."""


def _describe(node: str, ticket: Ticket) -> str:
    iv = ticket.interval
    tag = f" tag={ticket.tag!r}" if ticket.tag is not None else ""
    perm = getattr(ticket.permission, "value", ticket.permission)
    return (f"ticket {ticket.tid} [{perm} "
            f"{iv.array}[{iv.lo}:{iv.hi}] on {node}{tag}]")


class TicketAuditor:
    """Cross-store ledger of granted-but-not-yet-released tickets."""

    def __init__(self):
        self._lock = threading.Lock()
        # tid -> (node, ticket); tids are globally unique per engine run.
        self._outstanding: dict[int, tuple[str, Ticket]] = {}
        self.granted_total = 0
        self.released_total = 0

    # -- hooks called by LocalStore ---------------------------------------

    def note_granted(self, node: str, ticket: Ticket) -> None:
        perm = getattr(ticket.permission, "value", ticket.permission)
        data = ticket.data
        if (perm == "read" and data is not None
                and getattr(data, "flags", None) is not None
                and data.flags.writeable):
            raise WritableReadViewError(
                f"{_describe(str(node), ticket)} granted a WRITABLE read "
                "view — readers could mutate a sealed block shared "
                "zero-copy with other tasks and peers")
        with self._lock:
            self._outstanding[ticket.tid] = (node, ticket)
            self.granted_total += 1

    def note_released(self, node: str, ticket: Ticket) -> None:
        with self._lock:
            self._outstanding.pop(ticket.tid, None)
            self.released_total += 1

    # abandonment is a release for lifecycle purposes
    note_abandoned = note_released

    # -- teardown ----------------------------------------------------------

    def outstanding(self) -> list[tuple[str, Ticket]]:
        with self._lock:
            return sorted(self._outstanding.values(),
                          key=lambda pair: pair[1].tid)

    def assert_clean(self) -> None:
        """Raise :class:`TicketLeakError` if any grant was never unwound."""
        leaked = self.outstanding()
        if not leaked:
            return
        lines = [f"{len(leaked)} granted ticket(s) never released "
                 f"({self.granted_total} granted, "
                 f"{self.released_total} released over the run):"]
        lines.extend("  " + _describe(node, t) for node, t in leaked)
        raise TicketLeakError("\n".join(lines), [t for _, t in leaked])
