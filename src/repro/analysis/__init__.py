"""Static and dynamic protocol checkers for the DOoC runtime.

Three layers (see docs/ANALYSIS.md):

* **AST lint** (``python -m repro lint``): per-file repo-specific rules
  over the source tree — ticket-leak, dropped ``Effect`` lists,
  blocking-under-lock, trace-vocabulary enforcement and friends — with
  ``# dooc: noqa[CODE]`` suppressions (:mod:`repro.analysis.lint`,
  :mod:`repro.analysis.rules`, :mod:`repro.analysis.cli`; run
  ``--list-rules`` for the live catalog).

* **Whole-program dataflow** (``python -m repro lint --deep``): a
  module-aware call graph plus alias/escape summaries power the
  interprocedural rules — sealed-view mutation escape, static
  lock-order cycles, effect drops through helpers
  (:mod:`repro.analysis.flow`).

* **Runtime checkers** (``DOOC_CHECKERS=1``): a lock-order recorder that
  fails runs whose cross-thread lock acquisition graph contains a cycle
  (:mod:`repro.analysis.lockorder`), a ticket-lifecycle auditor that names
  tickets granted but never released/abandoned
  (:mod:`repro.analysis.tickets`), and a pre-execution task-graph
  validator (:mod:`repro.analysis.dagcheck`).

Submodules are imported lazily: the runtime modules (``datacutter``,
``core``) import from this package on their hot construction paths, and a
lazy surface keeps those imports cycle-free and cheap when the checkers
are disabled.
"""

from __future__ import annotations

import os
from typing import Any

__all__ = [
    "checkers_enabled",
    "Violation",
    "lint_source",
    "lint_file",
    "lint_paths",
    "analyze_sources",
    "deep_lint_paths",
    "LockOrderRecorder",
    "LockOrderViolation",
    "TicketAuditor",
    "TicketLeakError",
    "WritableReadViewError",
    "validate_tasks",
    "DagValidationError",
]

_TRUTHY = {"1", "true", "yes", "on"}


def checkers_enabled() -> bool:
    """Are the runtime protocol checkers requested via ``DOOC_CHECKERS``?"""
    return os.environ.get("DOOC_CHECKERS", "").strip().lower() in _TRUTHY


_LAZY = {
    "Violation": "repro.analysis.lint",
    "lint_source": "repro.analysis.lint",
    "lint_file": "repro.analysis.lint",
    "lint_paths": "repro.analysis.lint",
    "analyze_sources": "repro.analysis.flow",
    "deep_lint_paths": "repro.analysis.flow",
    "LockOrderRecorder": "repro.analysis.lockorder",
    "LockOrderViolation": "repro.analysis.lockorder",
    "TicketAuditor": "repro.analysis.tickets",
    "TicketLeakError": "repro.analysis.tickets",
    "WritableReadViewError": "repro.analysis.tickets",
    "validate_tasks": "repro.analysis.dagcheck",
    "DagValidationError": "repro.analysis.dagcheck",
}


def __getattr__(name: str) -> Any:
    module = _LAZY.get(name)
    if module is None:
        raise AttributeError(f"module {__name__!r} has no attribute {name!r}")
    import importlib

    return getattr(importlib.import_module(module), name)
