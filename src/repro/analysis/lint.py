"""Protocol-aware lint framework for the DOoC runtime.

The runtime's correctness rests on conventions no general-purpose linter
knows about: tickets from ``request_read``/``request_write`` must reach a
``release`` on every path, ``LocalStore`` methods return ``Effect`` lists
that the driver must execute, blocking calls must not run under runtime
locks, and trace event names must come from the central vocabulary
(:mod:`repro.obs.vocab`).  This module provides the machinery — the
per-file and whole-program rule registries, ``# dooc: noqa[CODE]``
suppressions, path walking with an optional process-pool fan-out —
while :mod:`repro.analysis.rules` provides the per-file rules and
:mod:`repro.analysis.flow.rules_deep` the interprocedural ones
(``DOOC000`` is reserved for files the analyzer cannot parse; run
``python -m repro lint --list-rules`` for the live catalog).

Run it as ``python -m repro lint [paths]`` (see :mod:`repro.analysis.cli`)
or call :func:`lint_paths` / :func:`lint_source` directly from tests.
"""

from __future__ import annotations

import ast
import re
from dataclasses import dataclass
from pathlib import Path
from collections.abc import Callable, Iterable

__all__ = [
    "Violation",
    "Rule",
    "RULES",
    "DEEP_RULES",
    "register",
    "register_deep",
    "lint_source",
    "lint_file",
    "lint_paths",
    "DEFAULT_PATH_RELAXATIONS",
]

#: code used when a file cannot be parsed at all
PARSE_ERROR_CODE = "DOOC000"

#: directories whose files exercise the raw protocol on purpose (tests poke
#: the storage state machine directly and assert on the returned effects)
#: — the protocol rules would drown them in noise, so only the rules that
#: stay meaningful there run by default.  Override with ``--strict`` or an
#: explicit ``--select``.
DEFAULT_PATH_RELAXATIONS: dict[str, frozenset[str]] = {
    # DOOC005 is relaxed in tests/benchmarks: crash-injection tests write
    # deliberately torn .blk/.ckpt files to prove recovery rejects them.
    # DOOC007 likewise: corruption tests may hand-craft broken compressed
    # streams without routing them through the codec registry.
    # The deep rules (DOOC010..DOOC012) are relaxed there too: the
    # zero-copy tests mutate sealed views *on purpose* to prove the
    # runtime raises, and storage unit tests poke effect lists directly.
    "tests": frozenset({"DOOC001", "DOOC002", "DOOC004", "DOOC005",
                        "DOOC007", "DOOC010", "DOOC011", "DOOC012"}),
    "benchmarks": frozenset({"DOOC001", "DOOC002", "DOOC004", "DOOC005",
                             "DOOC007", "DOOC010", "DOOC011", "DOOC012"}),
    "examples": frozenset({"DOOC001", "DOOC002", "DOOC012"}),
}


@dataclass(frozen=True)
class Violation:
    """One finding: a rule code anchored to a source location."""

    code: str
    path: str
    line: int
    col: int
    message: str

    def render(self) -> str:
        return f"{self.path}:{self.line}:{self.col}: {self.code} {self.message}"

    def to_json(self) -> dict:
        return {
            "code": self.code,
            "path": self.path,
            "line": self.line,
            "col": self.col,
            "message": self.message,
        }


@dataclass(frozen=True)
class Rule:
    """A registered lint rule.

    ``check`` receives the parsed module and the path and yields
    :class:`Violation` records; suppression and selection are handled by
    the framework, so rules simply report everything they see.
    """

    code: str
    name: str
    description: str
    check: Callable[[ast.Module, str], "Iterable[Violation]"]


#: code -> rule; populated by :func:`register` (see repro.analysis.rules)
RULES: dict[str, Rule] = {}

#: code -> whole-program rule; populated by :func:`register_deep` (see
#: repro.analysis.flow.rules_deep).  Deep rules receive a
#: :class:`repro.analysis.flow.Program` instead of a single module and
#: only run under ``lint --deep``.
DEEP_RULES: dict[str, Rule] = {}


def _register_into(registry: dict[str, Rule], code: str, name: str,
                   description: str):
    def deco(fn):
        if code in RULES or code in DEEP_RULES:
            raise ValueError(f"rule code {code} registered twice")
        registry[code] = Rule(code, name, description, fn)
        return fn

    return deco


def register(code: str, name: str, description: str):
    """Class/function decorator adding a per-file checker to the registry."""
    return _register_into(RULES, code, name, description)


def register_deep(code: str, name: str, description: str):
    """Decorator adding a whole-program checker (``lint --deep``)."""
    return _register_into(DEEP_RULES, code, name, description)


def all_rules() -> dict[str, Rule]:
    """Every registered rule, per-file and deep, after importing both
    rule modules (the registries populate on import)."""
    import repro.analysis.rules  # noqa: F401
    import repro.analysis.flow.rules_deep  # noqa: F401
    return {**RULES, **DEEP_RULES}


# -- suppressions -----------------------------------------------------------

_NOQA_RE = re.compile(r"#\s*dooc:\s*noqa(?:\[(?P<codes>[A-Z0-9,\s]+)\])?", re.I)


def _suppressions(source: str) -> dict[int, frozenset[str] | None]:
    """line -> suppressed codes (``None`` = all codes) from noqa comments."""
    out: dict[int, frozenset[str] | None] = {}
    for lineno, line in enumerate(source.splitlines(), start=1):
        m = _NOQA_RE.search(line)
        if not m:
            continue
        codes = m.group("codes")
        if codes is None:
            out[lineno] = None
        else:
            out[lineno] = frozenset(
                c.strip().upper() for c in codes.split(",") if c.strip()
            )
    return out


def _suppressed(v: Violation,
                noqa: dict[int, frozenset[str] | None]) -> bool:
    codes = noqa.get(v.line, frozenset())
    return codes is None or v.code in codes


# -- running ----------------------------------------------------------------


def _active_rules(registry: dict[str, Rule],
                  select: Iterable[str] | None,
                  ignore: Iterable[str] | None) -> list[Rule]:
    """Rules of ``registry`` left active by select/ignore.

    Codes are validated against *every* registered rule (per-file and
    deep), so ``--select DOOC010`` is legal for the per-file pass — it
    just activates nothing there.
    """
    known = set(all_rules()) | {PARSE_ERROR_CODE}
    selected = set(select) if select else set(registry)
    ignored = set(ignore) if ignore else set()
    unknown = (selected | ignored) - known
    if unknown:
        raise ValueError(f"unknown rule code(s): {sorted(unknown)}")
    return [registry[c] for c in sorted((selected - ignored) & set(registry))]


def lint_source(source: str, path: str = "<string>", *,
                select: Iterable[str] | None = None,
                ignore: Iterable[str] | None = None) -> list[Violation]:
    """Lint one source string; returns unsuppressed violations, sorted."""
    # Rules live in a sibling module; importing here keeps `import
    # repro.analysis.lint` cheap and cycle-free.
    from repro.analysis import rules as _rules  # noqa: F401
    try:
        tree = ast.parse(source, filename=path)
    except SyntaxError as exc:
        return [Violation(PARSE_ERROR_CODE, path, exc.lineno or 1,
                          (exc.offset or 1) - 1,
                          f"could not parse file: {exc.msg}")]
    noqa = _suppressions(source)
    out: list[Violation] = []
    for rule in _active_rules(RULES, select, ignore):
        for v in rule.check(tree, path):
            if not _suppressed(v, noqa):
                out.append(v)
    out.sort(key=lambda v: (v.line, v.col, v.code))
    return out


def _path_relaxations(path: Path) -> frozenset[str]:
    relaxed: set[str] = set()
    for part in path.parts:
        relaxed |= DEFAULT_PATH_RELAXATIONS.get(part, frozenset())
    return frozenset(relaxed)


def lint_file(path: Path | str, *,
              select: Iterable[str] | None = None,
              ignore: Iterable[str] | None = None,
              strict: bool = False) -> list[Violation]:
    """Lint one file, applying the per-directory default relaxations."""
    path = Path(path)
    effective_ignore = set(ignore or ())
    if not strict and select is None:
        effective_ignore |= _path_relaxations(path)
    source = path.read_text(encoding="utf-8")
    return lint_source(source, str(path), select=select,
                       ignore=effective_ignore or None)


def iter_python_files(paths: Iterable["Path | str"]) -> list[Path]:
    """Expand files/directories into a sorted, de-duplicated .py file list."""
    seen: set[Path] = set()
    out: list[Path] = []
    for raw in paths:
        p = Path(raw)
        if p.is_dir():
            candidates = sorted(p.rglob("*.py"))
        elif p.suffix == ".py":
            candidates = [p]
        else:
            candidates = []
        for c in candidates:
            if c not in seen:
                seen.add(c)
                out.append(c)
    return out


def _lint_file_task(args: tuple) -> list[Violation]:
    """Process-pool entry: lint one file from picklable arguments."""
    path, select, ignore, strict = args
    return lint_file(path, select=select, ignore=ignore, strict=strict)


#: below this many files the pool's spawn cost outweighs the win
_PARALLEL_THRESHOLD = 16


def lint_paths(paths: Iterable["Path | str"], *,
               select: Iterable[str] | None = None,
               ignore: Iterable[str] | None = None,
               strict: bool = False,
               jobs: int = 1) -> list[Violation]:
    """Lint every ``.py`` file under ``paths`` (files or directories).

    ``jobs > 1`` fans the per-file scan over a process pool.  Output is
    deterministic either way: files are visited in sorted path order and
    results are collected in submission order, so the violation list is
    byte-identical to a serial run.
    """
    files = iter_python_files(paths)
    select_t = tuple(select) if select else None
    ignore_t = tuple(ignore) if ignore else None
    if jobs > 1 and len(files) >= _PARALLEL_THRESHOLD:
        try:
            from concurrent.futures import ProcessPoolExecutor
            tasks = [(str(f), select_t, ignore_t, strict) for f in files]
            with ProcessPoolExecutor(max_workers=jobs) as pool:
                chunks = list(pool.map(_lint_file_task, tasks,
                                       chunksize=max(1, len(tasks) // (jobs * 4))))
            return [v for chunk in chunks for v in chunk]
        except (OSError, ImportError):  # pragma: no cover - no fork/semaphores
            pass  # sandboxed environments: fall through to the serial scan
    out: list[Violation] = []
    for path in files:
        out.extend(lint_file(path, select=select_t, ignore=ignore_t,
                             strict=strict))
    return out
