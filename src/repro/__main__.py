"""Command-line entry point: regenerate paper artefacts, inspect traces.

    python -m repro list
    python -m repro table1
    python -m repro table3 --nodes 1 4 9
    python -m repro all --quick
    python -m repro trace run.trace.jsonl -o run.json
    python -m repro lint src tests
    python -m repro bench --quick
    python -m repro bench --check --tolerance 25
    python -m repro serve --port 8787
    python -m repro submit --kind cg --n 256 --wait
    python -m repro status j0001 --trace
    python -m repro cancel j0001
    python -m repro sweep --dry-run
"""

from __future__ import annotations

import argparse
import sys
import time

from repro.experiments import EXPERIMENTS, run_experiment

_NEEDS_NODES = {"table3", "table4", "fig6", "fig7", "colocated", "energy"}


def main(argv: list[str] | None = None) -> int:
    argv = sys.argv[1:] if argv is None else argv
    if argv and argv[0] == "trace":
        from repro.obs.cli import main as trace_main
        return trace_main(argv[1:])
    if argv and argv[0] == "lint":
        from repro.analysis.cli import main as lint_main
        return lint_main(argv[1:])
    if argv and argv[0] == "bench":
        from repro.bench.cli import main as bench_main
        return bench_main(argv[1:])
    if argv and argv[0] in ("serve", "submit", "status", "cancel", "sweep"):
        from repro.server import cli as server_cli
        return getattr(server_cli, f"{argv[0]}_main")(argv[1:])
    parser = argparse.ArgumentParser(
        prog="python -m repro",
        description="Regenerate tables/figures of Zhou et al., ICPP 2012.",
    )
    parser.add_argument(
        "experiment",
        help="experiment id (see 'list'), or 'list', or 'all'",
    )
    parser.add_argument(
        "--nodes", type=int, nargs="+", default=None,
        help="node counts for testbed sweeps (default: the paper's 1..36)",
    )
    parser.add_argument("--seed", type=int, default=1)
    parser.add_argument(
        "--quick", action="store_true",
        help="with 'all': restrict testbed sweeps to 1,4,9 nodes",
    )
    args = parser.parse_args(argv)

    if args.experiment == "list":
        for exp_id in EXPERIMENTS:
            print(exp_id)
        return 0

    targets = list(EXPERIMENTS) if args.experiment == "all" else [args.experiment]
    for exp_id in targets:
        if exp_id not in EXPERIMENTS:
            print(f"unknown experiment {exp_id!r}; try 'list'", file=sys.stderr)
            return 2
        kwargs = {}
        if exp_id in _NEEDS_NODES:
            if args.nodes:
                kwargs["node_counts"] = tuple(args.nodes)
            elif args.quick:
                kwargs["node_counts"] = (1, 4, 9)
            kwargs["seed"] = args.seed
        elif exp_id in ("table1", "fig5"):
            kwargs["seed"] = args.seed if exp_id == "table1" else 3
        started = time.monotonic()
        _, text = run_experiment(exp_id, **kwargs)
        elapsed = time.monotonic() - started
        print(text)
        print(f"[{exp_id} regenerated in {elapsed:.1f} s]")
        print()
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
