"""K x K grid partitioning of matrices and conforming vector partitions.

"The A matrix ... is partitioned into sub-matrices of a K*K square grid,
such that each sub-matrix is small enough to fit into the local memory
available to a compute node along with the necessary input and output
vectors.  Each sub-matrix is labeled by its coordinates on the grid."
"""

from __future__ import annotations

from dataclasses import dataclass
from collections.abc import Callable, Iterator
from typing import Dict

import numpy as np

from repro.spmv.csr import CSRBlock
from repro.spmv.generator import gap_uniform_csr


def split_bounds(n: int, parts: int) -> np.ndarray:
    """parts+1 boundaries splitting range(n) as evenly as possible."""
    if parts < 1:
        raise ValueError("parts must be >= 1")
    if n < parts:
        raise ValueError(f"cannot split {n} rows into {parts} parts")
    return np.linspace(0, n, parts + 1).astype(np.int64)


@dataclass(frozen=True)
class GridPartition:
    """A K x K partition of an n x n matrix (bounds shared by rows/cols,
    so the vector partition conforms to both the input and output sides)."""

    n: int
    k: int

    def __post_init__(self) -> None:
        split_bounds(self.n, self.k)  # validates

    @property
    def bounds(self) -> np.ndarray:
        return split_bounds(self.n, self.k)

    def part_range(self, u: int) -> tuple[int, int]:
        if not 0 <= u < self.k:
            raise ValueError(f"part {u} outside 0..{self.k - 1}")
        b = self.bounds
        return int(b[u]), int(b[u + 1])

    def part_length(self, u: int) -> int:
        lo, hi = self.part_range(u)
        return hi - lo

    def coords(self) -> Iterator[tuple[int, int]]:
        for u in range(self.k):
            for v in range(self.k):
                yield u, v

    # -- matrix splitting --------------------------------------------------------

    def split_matrix(self, matrix: CSRBlock) -> dict[tuple[int, int], CSRBlock]:
        """Cut a global matrix into its K x K sub-matrices."""
        if matrix.shape != (self.n, self.n):
            raise ValueError(
                f"matrix shape {matrix.shape} != partition size {(self.n, self.n)}"
            )
        m = matrix.to_scipy()
        out: dict[tuple[int, int], CSRBlock] = {}
        b = self.bounds
        for u, v in self.coords():
            sub = m[b[u]:b[u + 1], b[v]:b[v + 1]]
            out[(u, v)] = CSRBlock.from_scipy(sub)
        return out

    def split_vector(self, x: np.ndarray) -> dict[int, np.ndarray]:
        if x.shape != (self.n,):
            raise ValueError(f"vector shape {x.shape} != ({self.n},)")
        b = self.bounds
        return {u: np.asarray(x[b[u]:b[u + 1]], dtype=np.float64)
                for u in range(self.k)}

    def join_vector(self, parts: dict[int, np.ndarray]) -> np.ndarray:
        return np.concatenate([parts[u] for u in range(self.k)])

    # -- direct generation ----------------------------------------------------------

    def generate_submatrices(
        self,
        d: float,
        rng_for: Callable[[int, int], np.random.Generator],
    ) -> dict[tuple[int, int], CSRBlock]:
        """Generate the grid directly sub-matrix by sub-matrix.

        This is how the testbed builds matrices too large to ever form
        globally: "larger matrices are built by replicating the matrix
        block generated for a compute node" — here each (u, v) gets its own
        seeded stream via ``rng_for`` so blocks differ but are reproducible.
        """
        out: dict[tuple[int, int], CSRBlock] = {}
        for u, v in self.coords():
            out[(u, v)] = gap_uniform_csr(
                self.part_length(u), self.part_length(v), d, rng_for(u, v)
            )
        return out


def column_owner(k: int, n_nodes: int) -> Callable[[int, int], int]:
    """The Fig. 5 placement: node j owns grid column block j.

    Columns are distributed round-robin in contiguous runs when k is a
    multiple of n_nodes (the paper's 5x5-per-node arrangement uses
    k = 5 * sqrt(nodes)).
    """
    if k % n_nodes != 0 and n_nodes != k:
        raise ValueError(f"k={k} not divisible into {n_nodes} column groups")
    per = k // n_nodes

    def owner(u: int, v: int) -> int:
        return min(v // per, n_nodes - 1)

    return owner


def block_owner(k: int, grid_nodes: int) -> Callable[[int, int], int]:
    """The testbed placement: nodes form a sqrt(N) x sqrt(N) grid, each
    owning a (k/sqrt(N)) x (k/sqrt(N)) block of sub-matrices."""
    side = int(round(np.sqrt(grid_nodes)))
    if side * side != grid_nodes:
        raise ValueError(f"{grid_nodes} is not a perfect square")
    if k % side != 0:
        raise ValueError(f"k={k} not divisible by node-grid side {side}")
    per = k // side

    def owner(u: int, v: int) -> int:
        return (u // per) * side + (v // per)

    return owner
