"""Iterated-SpMV DOoC programs.

Builds the task graph of Section IV: per iteration *i*,

* ``mult_i_u_v``: x^i_{u,v} = A_{u,v} * x^{i-1}_v   (one per sub-matrix)
* reduction to x^i_u, under one of two policies:

  - ``"simple"``  — one ``sum_i_u`` task reads every intermediate
    x^i_{u,v}; with the default placement all intermediates travel to the
    node owning the row (the Table III configuration, "all the
    intermediate results are sent to the node that hosts A_{i,0}");
  - ``"interleaved"`` — each owning node first reduces its own
    intermediates (``part_i_u_n``), and a slim ``sum_i_u`` combines the
    per-node partials (the Table IV configuration: "the reduction is
    instead first performed locally by each node before communicating").

Sub-matrices ride in DOoC global arrays as serialized binary-CRS bytes
(single-block uint8 arrays): the storage layer moves untyped buffers,
exactly as DataCutter prescribes.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from collections.abc import Callable
from pathlib import Path
from typing import Dict

import numpy as np

from repro.core.engine import DOoCEngine, Program
from repro.core.opcache import cached_decode
from repro.spmv.csr import CSRBlock
from repro.spmv.csrfile import deserialize_csr, serialize_csr
from repro.spmv.partition import GridPartition, column_owner


def a_name(u: int, v: int) -> str:
    return f"A_{u}_{v}"


def x_name(i: int, u: int) -> str:
    return f"x_{i}_{u}"


def y_name(i: int, u: int, v: int) -> str:
    return f"y_{i}_{u}_{v}"


def part_name(i: int, u: int, n: int) -> str:
    return f"part_{i}_{u}_{n}"


def _decode_a(raw: np.ndarray):
    """Serialized bytes -> SciPy CSR: the per-task decode worth caching.

    Building the ``sp.csr_matrix`` (index-dtype normalization, structure
    checks) is the expensive part of every multiply; the result may share
    memory with the granted read view — safe, because sealed buffers are
    immutable and the operand cache is invalidated (by seal generation)
    whenever the backing bytes are reclaimed.
    """
    return deserialize_csr(raw).to_scipy()


def _csr_nbytes(m) -> int:
    return int(m.data.nbytes + m.indices.nbytes + m.indptr.nbytes)


def _mult_fn(ins: dict, outs: dict, meta: dict) -> None:
    """x^i_{u,v} = A_{u,v} @ x^{i-1}_v."""
    a = cached_decode(meta, meta["a"], ins[meta["a"]], _decode_a,
                      size_of=_csr_nbytes)
    x = np.asarray(ins[meta["x"]], dtype=np.float64)
    (out_name,) = list(outs)
    outs[out_name][:] = a @ x


def _sum_fn(ins: dict, outs: dict, meta: dict) -> None:
    """Elementwise sum of all inputs."""
    (out_name,) = list(outs)
    out = outs[out_name]
    out[:] = 0.0
    for arr in ins.values():
        out += arr


@dataclass
class IteratedSpMVResult:
    """Program plus the metadata needed to read results back."""

    program: Program
    partition: GridPartition
    iterations: int
    policy: str
    owner: Callable[[int, int], int]

    def final_vector_names(self) -> list[str]:
        return [x_name(self.iterations, u) for u in range(self.partition.k)]

    def fetch_final(self, engine) -> np.ndarray:
        """Gather x^T from a finished engine run."""
        parts = {u: engine.fetch(x_name(self.iterations, u))
                 for u in range(self.partition.k)}
        return self.partition.join_vector(parts)


def build_iterated_spmv(
    blocks: dict[tuple[int, int], CSRBlock],
    x0_parts: dict[int, np.ndarray],
    iterations: int,
    *,
    n_nodes: int = 1,
    policy: str = "simple",
    owner: Callable[[int, int], int] | None = None,
    vector_block_elems: int | None = None,
) -> IteratedSpMVResult:
    """Assemble the DOoC program for T iterations of y = A x.

    ``blocks`` maps grid coordinates to sub-matrices; ``x0_parts`` the
    conforming initial sub-vectors.  ``owner(u, v)`` places sub-matrix
    files on nodes (default: Fig. 5's column ownership).
    """
    if policy not in ("simple", "interleaved"):
        raise ValueError(f"unknown policy {policy!r}")
    if iterations < 1:
        raise ValueError("iterations must be >= 1")
    ks = sorted({u for u, _ in blocks} | {v for _, v in blocks})
    k = len(ks)
    if sorted(blocks) != [(u, v) for u in range(k) for v in range(k)]:
        raise ValueError("blocks must cover a complete K x K grid")
    n = sum(blocks[(u, 0)].nrows for u in range(k))
    partition = GridPartition(n, k)
    for (u, v), b in blocks.items():
        want = (partition.part_length(u), partition.part_length(v))
        if b.shape != want:
            raise ValueError(f"block {(u, v)} has shape {b.shape}, want {want}")
    if sorted(x0_parts) != list(range(k)):
        raise ValueError("x0_parts must have one part per grid row")
    if owner is None:
        owner = column_owner(k, n_nodes)

    prog = Program(f"iterated-spmv-{policy}")

    # Sub-matrices: serialized bytes, one DOoC block each, on their nodes.
    for (u, v), b in blocks.items():
        raw = np.frombuffer(serialize_csr(b), dtype=np.uint8)
        prog.initial_array(a_name(u, v), raw, home=owner(u, v),
                           block_elems=len(raw))

    # Initial vector parts: x_v feeds column v's multiplies; home it with
    # the (first) owner of that column.
    for u in range(k):
        part = np.asarray(x0_parts[u], dtype=np.float64)
        if part.shape != (partition.part_length(u),):
            raise ValueError(f"x0 part {u} has wrong length")
        prog.initial_array(
            x_name(0, u), part, home=owner(0, u),
            block_elems=vector_block_elems or partition.part_length(u),
        )

    vec_block = lambda u: vector_block_elems or partition.part_length(u)  # noqa: E731

    for i in range(1, iterations + 1):
        # Multiplies
        for u, v in partition.coords():
            ylen = partition.part_length(u)
            prog.array(y_name(i, u, v), ylen, block_elems=vec_block(u))
            prog.add_task(
                f"mult_{i}_{u}_{v}",
                _mult_fn,
                [a_name(u, v), x_name(i - 1, v)],
                [y_name(i, u, v)],
                flops=2.0 * blocks[(u, v)].nnz,
                a=a_name(u, v),
                x=x_name(i - 1, v),
            )
        # Reductions
        for u in range(k):
            ylen = partition.part_length(u)
            prog.array(x_name(i, u), ylen, block_elems=vec_block(u))
            if policy == "simple":
                prog.add_task(
                    f"sum_{i}_{u}",
                    _sum_fn,
                    [y_name(i, u, v) for v in range(k)],
                    [x_name(i, u)],
                    flops=float(ylen * (k - 1)),
                )
            else:
                # Per-node partial sums first.
                groups: dict[int, list[int]] = {}
                for v in range(k):
                    groups.setdefault(owner(u, v), []).append(v)
                partial_names = []
                for node, vs in sorted(groups.items()):
                    if len(vs) == 1:
                        # A singleton partial would be a copy; feed the
                        # intermediate straight into the final sum.
                        partial_names.append(y_name(i, u, vs[0]))
                        continue
                    pname = part_name(i, u, node)
                    prog.array(pname, ylen, block_elems=vec_block(u))
                    prog.add_task(
                        f"psum_{i}_{u}_{node}",
                        _sum_fn,
                        [y_name(i, u, v) for v in vs],
                        [pname],
                        flops=float(ylen * (len(vs) - 1)),
                    )
                    partial_names.append(pname)
                if len(partial_names) == 1:
                    # Single owner: rename by a trivial sum (keeps naming
                    # uniform across policies).
                    prog.add_task(
                        f"sum_{i}_{u}",
                        _sum_fn,
                        partial_names,
                        [x_name(i, u)],
                        flops=float(ylen),
                    )
                else:
                    prog.add_task(
                        f"sum_{i}_{u}",
                        _sum_fn,
                        partial_names,
                        [x_name(i, u)],
                        flops=float(ylen * (len(partial_names) - 1)),
                    )
    return IteratedSpMVResult(
        program=prog,
        partition=partition,
        iterations=iterations,
        policy=policy,
        owner=owner,
    )


@dataclass
class IteratedSpMVRun:
    """Outcome of a (possibly chunked and resumed) iterated-SpMV drive."""

    partition: GridPartition
    x_parts: Dict[int, np.ndarray]
    iterations: int                 #: total iterations now complete
    restored_from: int | None = None  #: checkpoint step resumed from
    checkpoint_writes: int = 0
    reports: list = field(default_factory=list)  #: one RunReport per chunk
    #: per-sweep workset history (incremental drives only)
    convergence: object | None = None
    #: did the drive hit a bitwise fixpoint/limit cycle before sweep T?
    fixpoint: bool = False
    #: per-program task/IO accounting (incremental drives only)
    sweep_log: list = field(default_factory=list)

    def join(self) -> np.ndarray:
        """The full iterate x^T, reassembled from its parts."""
        return self.partition.join_vector(self.x_parts)


def run_iterated_spmv(
    blocks: dict[tuple[int, int], CSRBlock],
    x0_parts: dict[int, np.ndarray],
    iterations: int,
    *,
    n_nodes: int = 1,
    policy: str = "simple",
    owner: Callable[[int, int], int] | None = None,
    vector_block_elems: int | None = None,
    checkpoint_dir: str | Path | None = None,
    checkpoint_every: int | None = None,
    resume: bool = False,
    run_timeout: float | None = 120.0,
    engine_kwargs: dict | None = None,
    cancel=None,
    incremental: bool = False,
) -> IteratedSpMVRun:
    """Drive T iterations of y = A x in checkpointed chunks.

    Without ``checkpoint_dir`` this runs one engine program for all
    ``iterations``.  With it, the drive proceeds in chunks of
    ``checkpoint_every`` iterations and persists the iterate's parts at
    every chunk boundary (atomic manifest + per-part sha256, via
    :mod:`repro.recovery.checkpoint`).  ``resume=True`` restarts from the
    newest intact checkpoint: because each chunk re-seeds the engine with
    the exact float64 parts the previous chunk produced, a resumed drive
    reproduces the remaining iterates bit-identically — kill the process
    mid-drive, call again with ``resume=True``, and the final vector
    matches an uninterrupted run byte for byte.

    ``cancel`` (a :class:`repro.core.cancel.CancelToken`) threads into
    every chunk's engine run: setting it raises
    :class:`~repro.core.errors.RunCancelled` out of this call with all
    completed chunk boundaries checkpointed, so a later ``resume=True``
    drive continues bit-identically — the preemption primitive the job
    server builds on.

    ``incremental=True`` switches to delta/workset sweeps (one engine
    program per iteration through :class:`~repro.spmv.ooc_operator.
    OutOfCoreMatrix`): vector partitions whose iterate goes bitwise
    stationary — or enters an exact period-2 last-ulp limit cycle — leave
    the workset, their multiplies are replaced by cached products, and
    the drive exits early at a global fixpoint.  The returned iterate is
    still **bit-identical** to the bulk-synchronous drive for exactly
    ``iterations`` sweeps (a period-2 exit picks the phase matching the
    remaining parity); only the tasks run and bytes read shrink.  See
    ``docs/ITERATION.md``.
    """
    if iterations < 1:
        raise ValueError("iterations must be >= 1")
    if checkpoint_every is not None and checkpoint_every < 1:
        raise ValueError("checkpoint_every must be >= 1")
    if incremental:
        return _run_incremental_spmv(
            blocks, x0_parts, iterations, n_nodes=n_nodes, policy=policy,
            owner=owner, vector_block_elems=vector_block_elems,
            checkpoint_dir=checkpoint_dir, checkpoint_every=checkpoint_every,
            resume=resume, run_timeout=run_timeout,
            engine_kwargs=engine_kwargs, cancel=cancel)
    chunk = checkpoint_every or iterations
    parts = {u: np.asarray(p, dtype=np.float64).copy()
             for u, p in x0_parts.items()}
    mgr = None
    done = 0
    restored = None
    if checkpoint_dir is not None:
        from repro.recovery.checkpoint import CheckpointManager
        mgr = CheckpointManager(checkpoint_dir)
        if resume:
            ckpt = mgr.load_latest()
            if ckpt is not None:
                done = restored = ckpt.step
                parts = {int(name[1:]): arr.copy()
                         for name, arr in ckpt.arrays.items()}
    run = IteratedSpMVRun(partition=GridPartition(
        sum(len(p) for p in parts.values()), len(parts)),
        x_parts=parts, iterations=done, restored_from=restored)
    while done < iterations:
        step = min(chunk, iterations - done)
        built = build_iterated_spmv(
            blocks, parts, step, n_nodes=n_nodes, policy=policy,
            owner=owner, vector_block_elems=vector_block_elems)
        eng = DOoCEngine(n_nodes=n_nodes, **dict(engine_kwargs or {}))
        try:
            run.reports.append(eng.run(built.program, timeout=run_timeout,
                                       cancel=cancel))
            # fetch() already concatenates into a fresh array — no copy.
            parts = {u: eng.fetch(x_name(step, u))
                     for u in range(built.partition.k)}
        finally:
            eng.cleanup()
        done += step
        if mgr is not None:
            mgr.save(done, {f"x{u}": parts[u] for u in sorted(parts)},
                     {"iterations": done, "policy": policy})
    run.x_parts = parts
    run.iterations = done
    if mgr is not None:
        run.checkpoint_writes = mgr.writes
    return run


def _run_incremental_spmv(
    blocks: dict[tuple[int, int], CSRBlock],
    x0_parts: dict[int, np.ndarray],
    iterations: int,
    *,
    n_nodes: int,
    policy: str,
    owner: Callable[[int, int], int] | None,
    vector_block_elems: int | None,
    checkpoint_dir: str | Path | None,
    checkpoint_every: int | None,
    resume: bool,
    run_timeout: float | None,
    engine_kwargs: dict | None,
    cancel,
) -> IteratedSpMVRun:
    """Delta/workset drive: one engine program per sweep, frozen columns
    served from the product cache, early exit at a bitwise fixpoint or
    period-2 limit cycle (parity-corrected so x^T matches the bulk drive
    bit for bit)."""
    from repro.core.convergence import ConvergenceTracker
    from repro.spmv.ooc_operator import OutOfCoreMatrix, SweepWorkset

    op = OutOfCoreMatrix(blocks, n_nodes=n_nodes, policy=policy,
                         owner=owner, engine_kwargs=engine_kwargs)
    op.cancel = cancel
    p = op.partition
    parts = {u: np.asarray(x0_parts[u], dtype=np.float64).copy()
             for u in x0_parts}
    if sorted(parts) != list(range(p.k)):
        raise ValueError("x0_parts must have one part per grid row")
    mgr = None
    done = 0
    restored = None
    last_saved: int | None = None
    if checkpoint_dir is not None:
        from repro.recovery.checkpoint import CheckpointManager
        mgr = CheckpointManager(checkpoint_dir)
        if resume:
            ckpt = mgr.load_latest()
            if ckpt is not None:
                done = restored = last_saved = ckpt.step
                parts = {int(name[1:]): arr.copy()
                         for name, arr in ckpt.arrays.items()}
    chunk = checkpoint_every or iterations
    workset = SweepWorkset(op)
    tracker = ConvergenceTracker(p.k, tol=0.0, tracer=op.engine.tracer)
    run = IteratedSpMVRun(partition=p, x_parts=parts, iterations=done,
                          restored_from=restored)
    x = p.join_vector(parts)
    x_two_ago: np.ndarray | None = None
    pending_aux = 0
    try:
        while done < iterations:
            x_new = op.matvec(x, workset=workset)
            record = tracker.observe(
                p.split_vector(x), p.split_vector(x_new),
                tasks_scheduled=op.last_sweep["tasks"],
                aux_tasks=pending_aux)
            pending_aux = 0
            for v in record.reentered:
                workset.thaw(v)
            done += 1
            if (np.array_equal(x_new, x)
                    or (x_two_ago is not None
                        and np.array_equal(x_new, x_two_ago))):
                # x(done) repeats x(done-1) or x(done-2): every later
                # iterate is determined.  Period-1 keeps x_new; a
                # period-2 cycle alternates x_new / x, so pick the phase
                # whose parity matches the requested sweep count T.
                period2 = not np.array_equal(x_new, x)
                if not (period2 and (iterations - done) % 2):
                    x = x_new  # else x(T) == x(done-1) == current x
                run.fixpoint = True
                break
            new_parts = p.split_vector(x_new)
            for v in record.newly_frozen:
                for phase in tracker.phases(v) or (new_parts[v],):
                    pending_aux += workset.freeze(v, phase)
            x_two_ago = x
            x = x_new
            if mgr is not None and done % chunk == 0:
                mgr.save(done, {f"x{u}": arr for u, arr in
                                sorted(p.split_vector(x).items())},
                         {"iterations": done, "policy": policy})
                last_saved = done
    finally:
        op.engine.cleanup()
    run.x_parts = p.split_vector(x)
    run.iterations = iterations if run.fixpoint else done
    run.convergence = tracker.report
    run.sweep_log = list(op.sweep_log)
    if mgr is not None:
        if last_saved != run.iterations:
            mgr.save(run.iterations,
                     {f"x{u}": arr for u, arr in sorted(run.x_parts.items())},
                     {"iterations": run.iterations, "policy": policy})
        run.checkpoint_writes = mgr.writes
    return run
