"""Binary CRS file format for sub-matrix storage.

Layout (little-endian):

=========  ======  =====================================
offset     dtype   field
=========  ======  =====================================
0          8s      magic ``b"DOOCCSR1"``
8          i64     nrows
16         i64     ncols
24         i64     nnz
32         i64[n+1]  indptr
...        i64[nnz]  indices
...        f64[nnz]  values
=========  ======  =====================================

The same byte layout doubles as the in-memory serialization used to park a
sub-matrix in a DOoC global array (one uint8 block), so the storage layer
stays agnostic of matrix structure — it only ever moves untyped bytes, as
DataCutter intends.

On disk a sub-matrix file may additionally be wrapped in the chunk
container from :mod:`repro.core.iofilter` (pass ``codec=`` to
:func:`write_csr_file`): the container's own magic distinguishes it from a
legacy bare CRS file, so readers accept both without being told which.
"""

from __future__ import annotations

import struct
from pathlib import Path

import numpy as np

from repro.core.iofilter import CHUNK_MAGIC, pack_chunk, unpack_chunk
from repro.spmv.csr import CSRBlock, CSRError
from repro.util.atomicio import atomic_write

MAGIC = b"DOOCCSR1"
_HEADER = struct.Struct("<8sqqq")


def csr_nbytes(nrows: int, nnz: int) -> int:
    """Size in bytes of the serialized form."""
    return _HEADER.size + 8 * (nrows + 1) + 8 * nnz + 8 * nnz


def serialize_csr(block: CSRBlock) -> bytes:
    """Serialize to the binary CRS layout."""
    header = _HEADER.pack(MAGIC, block.nrows, block.ncols, block.nnz)
    return b"".join(
        [
            header,
            np.ascontiguousarray(block.indptr, dtype="<i8").tobytes(),
            np.ascontiguousarray(block.indices, dtype="<i8").tobytes(),
            np.ascontiguousarray(block.values, dtype="<f8").tobytes(),
        ]
    )


def deserialize_csr(raw) -> CSRBlock:
    """Parse the binary CRS layout (accepts bytes or a uint8 ndarray).

    Array views are taken zero-copy when the buffer alignment allows.
    """
    buf = memoryview(np.asarray(raw, dtype=np.uint8)).cast("B") \
        if isinstance(raw, np.ndarray) else memoryview(raw)
    if len(buf) < _HEADER.size:
        raise CSRError("buffer too short for a CRS header")
    magic, nrows, ncols, nnz = _HEADER.unpack_from(buf, 0)
    if magic != MAGIC:
        raise CSRError(f"bad magic {magic!r}; not a binary CRS buffer")
    expected = csr_nbytes(nrows, nnz)
    if len(buf) < expected:
        raise CSRError(
            f"buffer has {len(buf)} bytes; header promises {expected}"
        )
    off = _HEADER.size
    indptr = np.frombuffer(buf, dtype="<i8", count=nrows + 1, offset=off)
    off += 8 * (nrows + 1)
    indices = np.frombuffer(buf, dtype="<i8", count=nnz, offset=off)
    off += 8 * nnz
    values = np.frombuffer(buf, dtype="<f8", count=nnz, offset=off)
    return CSRBlock(nrows=nrows, ncols=ncols,
                    indptr=indptr, indices=indices, values=values)


def write_csr_file(path: str | Path, block: CSRBlock,
                   codec: str | None = None) -> int:
    """Write a sub-matrix file; returns bytes written.

    ``codec`` (a :mod:`repro.core.codecs` name; ``None``/``"raw"`` writes
    the bare legacy layout) wraps the serialized CRS bytes in the
    self-describing chunk container — readers probe the leading magic, so
    compressed and bare files coexist in one directory.  Goes through
    :func:`atomic_write` so a crash mid-write can never leave a torn file
    that passes the magic check but truncates the payload — readers see
    the old complete file or the new complete file.
    """
    data = serialize_csr(block)
    if codec is not None and codec != "raw":
        data = pack_chunk(codec, data, 1)
    atomic_write(Path(path), data)
    return len(data)


def _unwrap(blob: bytes, path) -> bytes:
    """Strip the chunk container when present (probe by magic)."""
    if blob[:len(CHUNK_MAGIC)] == CHUNK_MAGIC:
        return unpack_chunk(blob, 1, f"CRS file {path}")
    return blob


def read_csr_file(path: str | Path) -> CSRBlock:
    """Read a sub-matrix file (bare or chunk-wrapped)."""
    return deserialize_csr(_unwrap(Path(path).read_bytes(), path))


def peek_csr_header(path: str | Path) -> tuple[int, int, int]:
    """(nrows, ncols, nnz) without parsing the payload arrays.

    A chunk-wrapped file must be decoded to reach the CRS header, but the
    arrays are still never *parsed* — the caller pays one decode, not a
    deserialize.
    """
    with open(path, "rb") as fh:
        head = fh.read(max(_HEADER.size, len(CHUNK_MAGIC)))
        if head[:len(CHUNK_MAGIC)] == CHUNK_MAGIC:
            head = _unwrap(head + fh.read(), path)[:_HEADER.size]
    if len(head) < _HEADER.size:
        raise CSRError(f"{path} too short for a CRS header")
    magic, nrows, ncols, nnz = _HEADER.unpack(head[:_HEADER.size])
    if magic != MAGIC:
        raise CSRError(f"{path} is not a binary CRS file")
    return nrows, ncols, nnz
