"""Sparse matrix-vector multiplication: the paper's use-case application.

* :mod:`repro.spmv.csr` — a minimal CSR block container with validated
  construction, SciPy interop, and flop accounting;
* :mod:`repro.spmv.csrfile` — the binary CRS on-disk format used for
  sub-matrix files ("each sub-matrix is stored in a separate file in binary
  Compressed Row Storage format");
* :mod:`repro.spmv.generator` — the paper's random matrix generator: the
  gap between consecutive nonzeros of a row is uniform in [1, 2d], with d
  chosen to hit a target density; plus a symmetric generator for
  eigensolver demos;
* :mod:`repro.spmv.partition` — the K x K grid partitioner for matrices
  and the matching vector partitioner;
* :mod:`repro.spmv.program` — iterated-SpMV DOoC programs under the
  *simple* and *interleaved* reduction policies of Section V;
* :mod:`repro.spmv.reference` — dense-memory reference implementations and
  the analytic load-count models of Fig. 5.
"""

from repro.spmv.csr import CSRBlock
from repro.spmv.csrfile import read_csr_file, write_csr_file
from repro.spmv.generator import gap_uniform_csr, choose_gap_parameter, symmetric_test_matrix
from repro.spmv.partition import GridPartition
from repro.spmv.program import build_iterated_spmv, IteratedSpMVResult
from repro.spmv.ooc_operator import OutOfCoreMatrix

__all__ = [
    "OutOfCoreMatrix",
    "CSRBlock",
    "read_csr_file",
    "write_csr_file",
    "gap_uniform_csr",
    "choose_gap_parameter",
    "symmetric_test_matrix",
    "GridPartition",
    "build_iterated_spmv",
    "IteratedSpMVResult",
]
