"""In-core references and the analytic load-count models of Fig. 5."""

from __future__ import annotations

from typing import Dict

import numpy as np

from repro.spmv.csr import CSRBlock
from repro.spmv.partition import GridPartition


def iterated_spmv_reference(matrix: CSRBlock, x0: np.ndarray,
                            iterations: int) -> np.ndarray:
    """x^T from T in-core iterations (the ground truth)."""
    m = matrix.to_scipy()
    x = np.asarray(x0, dtype=np.float64)
    for _ in range(iterations):
        x = m @ x
    return x


def iterated_spmv_blocked_reference(
    blocks: dict[tuple[int, int], CSRBlock],
    partition: GridPartition,
    x0: np.ndarray,
    iterations: int,
) -> np.ndarray:
    """Same computation through the blocked data path (differential test
    for the partitioner + program semantics)."""
    parts = partition.split_vector(x0)
    k = partition.k
    for _ in range(iterations):
        new = {}
        for u in range(k):
            acc = np.zeros(partition.part_length(u))
            for v in range(k):
                acc += blocks[(u, v)].matvec(parts[v])
            new[u] = acc
        parts = new
    return partition.join_vector(parts)


# ---------------------------------------------------------------------------
# Fig. 5 load-count models
# ---------------------------------------------------------------------------


def loads_regular_plan(k_local: int, iterations: int) -> int:
    """Matrix loads per node under the naive MPI-style plan (Fig. 5a).

    A node owning ``k_local`` sub-matrices with memory for one reloads all
    of them every iteration: "6 matrix load operations (3 per iteration)".
    """
    if k_local < 1 or iterations < 1:
        raise ValueError("k_local and iterations must be >= 1")
    return k_local * iterations


def loads_back_and_forth_plan(k_local: int, iterations: int) -> int:
    """Matrix loads per node under the reordered plan (Fig. 5b).

    "a cost of 3 matrix loads for the first iteration and 2 matrix loads
    for each subsequent iteration": the sub-matrix processed last stays in
    memory and the next iteration runs backwards.
    """
    if k_local < 1 or iterations < 1:
        raise ValueError("k_local and iterations must be >= 1")
    if k_local == 1:
        return 1  # the single matrix is loaded once, ever
    return k_local + (iterations - 1) * (k_local - 1)
