"""A validated Compressed-Row-Storage matrix block."""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np
import scipy.sparse as sp


class CSRError(ValueError):
    """Malformed CSR structure."""


@dataclass(frozen=True)
class CSRBlock:
    """One sub-matrix in CSR form.

    Arrays follow the classic layout: ``indptr`` has ``nrows + 1`` entries,
    row ``i`` owns ``indices[indptr[i]:indptr[i+1]]`` (column ids, strictly
    increasing within a row) and the matching ``values``.
    """

    nrows: int
    ncols: int
    indptr: np.ndarray   # int64, nrows + 1
    indices: np.ndarray  # int64, nnz
    values: np.ndarray   # float64, nnz

    def __post_init__(self) -> None:
        if self.nrows < 0 or self.ncols < 0:
            raise CSRError("negative matrix dimensions")
        indptr = np.asarray(self.indptr)
        indices = np.asarray(self.indices)
        values = np.asarray(self.values)
        if indptr.shape != (self.nrows + 1,):
            raise CSRError(f"indptr has shape {indptr.shape}, want ({self.nrows + 1},)")
        if indptr[0] != 0:
            raise CSRError("indptr must start at 0")
        if np.any(np.diff(indptr) < 0):
            raise CSRError("indptr must be non-decreasing")
        nnz = int(indptr[-1])
        if indices.shape != (nnz,) or values.shape != (nnz,):
            raise CSRError(
                f"indices/values shapes {indices.shape}/{values.shape} disagree "
                f"with indptr nnz {nnz}"
            )
        if nnz and (indices.min() < 0 or indices.max() >= self.ncols):
            raise CSRError("column index out of range")

    # -- properties -----------------------------------------------------------

    @property
    def nnz(self) -> int:
        return int(self.indptr[-1])

    @property
    def shape(self) -> tuple[int, int]:
        return (self.nrows, self.ncols)

    @property
    def nbytes(self) -> int:
        return self.indptr.nbytes + self.indices.nbytes + self.values.nbytes

    @property
    def matvec_flops(self) -> int:
        """2 flops per stored nonzero (multiply + add)."""
        return 2 * self.nnz

    def row_nnz(self) -> np.ndarray:
        return np.diff(self.indptr)

    # -- conversions -----------------------------------------------------------

    def to_scipy(self) -> sp.csr_matrix:
        return sp.csr_matrix(
            (self.values, self.indices, self.indptr), shape=self.shape
        )

    @classmethod
    def from_scipy(cls, m) -> CSRBlock:
        csr = sp.csr_matrix(m)
        csr.sort_indices()
        return cls(
            nrows=csr.shape[0],
            ncols=csr.shape[1],
            indptr=csr.indptr.astype(np.int64),
            indices=csr.indices.astype(np.int64),
            values=csr.data.astype(np.float64),
        )

    def to_dense(self) -> np.ndarray:
        return self.to_scipy().toarray()

    # -- kernels -----------------------------------------------------------------

    def matvec(self, x: np.ndarray, out: np.ndarray | None = None) -> np.ndarray:
        """y = A @ x using SciPy's compiled kernel."""
        x = np.asarray(x, dtype=np.float64)
        if x.shape != (self.ncols,):
            raise CSRError(f"x has shape {x.shape}, want ({self.ncols},)")
        y = self.to_scipy() @ x
        if out is not None:
            if out.shape != (self.nrows,):
                raise CSRError(f"out has shape {out.shape}, want ({self.nrows},)")
            out[:] = y
            return out
        return y

    def matvec_python(self, x: np.ndarray) -> np.ndarray:
        """Reference row-loop kernel (for differential testing)."""
        x = np.asarray(x, dtype=np.float64)
        if x.shape != (self.ncols,):
            raise CSRError(f"x has shape {x.shape}, want ({self.ncols},)")
        y = np.zeros(self.nrows)
        for i in range(self.nrows):
            lo, hi = self.indptr[i], self.indptr[i + 1]
            y[i] = np.dot(self.values[lo:hi], x[self.indices[lo:hi]])
        return y

    @classmethod
    def empty(cls, nrows: int, ncols: int) -> CSRBlock:
        return cls(
            nrows=nrows,
            ncols=ncols,
            indptr=np.zeros(nrows + 1, dtype=np.int64),
            indices=np.zeros(0, dtype=np.int64),
            values=np.zeros(0, dtype=np.float64),
        )
