"""Random sparse matrix generators.

The paper's testbed matrices are generated "randomly, such that the
separation between two consecutive nonzero entries on a row is uniformly
distributed in the interval [1:2d], where d is a parameter ... chosen to
yield a certain number of total non-zero elements in a sub-matrix".  The
mean gap is (1 + 2d)/2, so a row of ``ncols`` columns carries about
``ncols / (d + 0.5)`` nonzeros; :func:`choose_gap_parameter` inverts that.

:func:`symmetric_test_matrix` builds modest symmetric positive-definite
matrices for the eigensolver examples (Lanczos needs symmetry; the paper's
Hamiltonians are symmetric).
"""

from __future__ import annotations

import numpy as np
import scipy.sparse as sp

from repro.spmv.csr import CSRBlock


def choose_gap_parameter(ncols: int, nnz_per_row: float) -> float:
    """The d yielding ~``nnz_per_row`` nonzeros per row of width ``ncols``.

    Derived from E[gap] = d + 1/2 for gaps uniform on [1, 2d].
    """
    if nnz_per_row <= 0:
        raise ValueError("nnz_per_row must be positive")
    if nnz_per_row > ncols:
        raise ValueError(f"cannot fit {nnz_per_row} nonzeros in {ncols} columns")
    return max(ncols / nnz_per_row - 0.5, 0.5)


def _row_columns(ncols: int, max_gap: int, rng: np.random.Generator) -> np.ndarray:
    """Column indices of one gap-uniform row (sorted, unique by design).

    The first column is uniform on [0, max_gap); subsequent columns advance
    by iid uniform gaps on [1, max_gap].  Gaps are drawn in vectorized
    batches sized to the expected remaining count.
    """
    start = int(rng.integers(0, max_gap))
    if start >= ncols:
        return np.zeros(0, dtype=np.int64)
    pieces = [np.array([start], dtype=np.int64)]
    last = start
    mean_gap = (max_gap + 1) / 2.0
    while True:
        remaining = ncols - last
        batch = max(int(remaining / mean_gap) + 8, 16)
        gaps = rng.integers(1, max_gap + 1, size=batch)
        cols = last + np.cumsum(gaps)
        inside = cols[cols < ncols]
        if inside.size:
            pieces.append(inside.astype(np.int64))
        if inside.size < cols.size:  # the batch crossed the row boundary
            break
        last = int(cols[-1])
    return np.concatenate(pieces)


def gap_uniform_csr(
    nrows: int,
    ncols: int,
    d: float,
    rng: np.random.Generator,
    *,
    values: str = "uniform",
) -> CSRBlock:
    """Generate the paper's gap-uniform random sub-matrix.

    Column gaps per row are iid uniform integers on [1, round(2d)]; the
    first nonzero column of a row is uniform on [0, gap) so rows are not
    all anchored at column 0.  ``values`` selects the nonzero distribution:
    ``"uniform"`` on [-1, 1) or ``"ones"``.
    """
    if nrows < 0 or ncols <= 0:
        raise ValueError("bad matrix dimensions")
    if d < 0.5:
        raise ValueError("d must be >= 0.5 (mean gap >= 1)")
    max_gap = max(int(round(2 * d)), 1)
    indptr = np.zeros(nrows + 1, dtype=np.int64)
    rows_cols: list[np.ndarray] = []
    for i in range(nrows):
        rows_cols.append(_row_columns(ncols, max_gap, rng))
        indptr[i + 1] = indptr[i] + rows_cols[-1].size
    indices = (
        np.concatenate(rows_cols) if rows_cols else np.zeros(0, dtype=np.int64)
    )
    nnz = int(indptr[-1])
    if values == "uniform":
        vals = rng.uniform(-1.0, 1.0, size=nnz)
    elif values == "ones":
        vals = np.ones(nnz)
    else:
        raise ValueError(f"unknown values distribution {values!r}")
    return CSRBlock(nrows=nrows, ncols=ncols, indptr=indptr,
                    indices=indices, values=vals)


def expected_nnz(nrows: int, ncols: int, d: float) -> float:
    """Expected nonzero count of :func:`gap_uniform_csr`."""
    max_gap = max(int(round(2 * d)), 1)
    return nrows * ncols / ((max_gap + 1) / 2.0)


def symmetric_test_matrix(
    n: int,
    nnz_per_row: float,
    rng: np.random.Generator,
    *,
    diag_shift: float = 0.0,
) -> CSRBlock:
    """A random symmetric matrix with a controllable spectrum floor.

    Built as (R + R^T)/2 from a gap-uniform R, plus ``diag_shift`` x I; with
    a positive shift exceeding the Gershgorin radius it is positive
    definite — handy for Lanczos convergence tests.
    """
    d = choose_gap_parameter(n, max(nnz_per_row / 2.0, 1.0))
    r = gap_uniform_csr(n, n, d, rng).to_scipy()
    m = (r + r.T) * 0.5
    if diag_shift:
        m = m + sp.identity(n) * diag_shift
    return CSRBlock.from_scipy(m)
