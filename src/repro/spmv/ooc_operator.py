"""An out-of-core blocked matrix as a reusable linear operator.

``OutOfCoreMatrix`` owns a DOoC engine whose scratch directories hold the
K x K binary-CSR sub-matrix files (seeded once); every ``matvec`` builds
and runs a DOoC program (multiplies + policy-dependent reductions).  The
Lanczos, Jacobi, and conjugate-gradient solvers all drive their heavy
SpMVs through this one operator — "developing more linear algebra kernels
[to] lower the bar for the application scientists" (Section VII).
"""

from __future__ import annotations

from pathlib import Path
from collections.abc import Callable
from typing import Dict

import numpy as np

from repro.core.engine import DOoCEngine, Program
from repro.core.iofilter import write_array
from repro.core.array import ArrayDesc
from repro.spmv.csr import CSRBlock
from repro.spmv.csrfile import serialize_csr
from repro.spmv.partition import GridPartition, column_owner
from repro.spmv.program import _mult_fn, _sum_fn, a_name


class OutOfCoreMatrix:
    """y = A @ x with A resident on disk, executed through DOoC."""

    def __init__(
        self,
        blocks: dict[tuple[int, int], CSRBlock],
        *,
        n_nodes: int = 1,
        workers_per_node: int | None = None,
        workers: int | None = None,
        memory_budget_per_node: int = 256 * 2**20,
        scratch_dir: str | Path | None = None,
        policy: str = "interleaved",
        owner: Callable[[int, int], int] | None = None,
        rng_seed: int = 0,
        gc_arrays: bool = True,
        engine_kwargs: dict | None = None,
    ):
        ks = sorted({u for u, _ in blocks})
        k = len(ks)
        if sorted(blocks) != [(u, v) for u in range(k) for v in range(k)]:
            raise ValueError("blocks must cover a complete K x K grid")
        n = sum(blocks[(u, 0)].nrows for u in range(k))
        self.partition = GridPartition(n, k)
        for (u, v), b in blocks.items():
            want = (self.partition.part_length(u), self.partition.part_length(v))
            if b.shape != want:
                raise ValueError(f"block {(u, v)} has shape {b.shape}, want {want}")
        if policy not in ("simple", "interleaved"):
            raise ValueError(f"unknown policy {policy!r}")
        self.policy = policy
        self.k = k
        self.n = n
        self.owner = owner or column_owner(k, n_nodes)
        # Extra engine knobs (fault plans, watchdog, worker plane) for
        # callers like the job server; they override the named defaults.
        eng_kwargs = dict(
            n_nodes=n_nodes,
            workers_per_node=workers_per_node,
            workers=workers,
            memory_budget_per_node=memory_budget_per_node,
            scratch_dir=scratch_dir,
            rng_seed=rng_seed,
            gc_arrays=gc_arrays,
        )
        eng_kwargs.update(engine_kwargs or {})
        self.engine = DOoCEngine(**eng_kwargs)
        self._a_raw_len: dict[tuple[int, int], int] = {}
        self._nnz: dict[tuple[int, int], int] = {}
        self.matvec_count = 0
        #: optional CancelToken threaded into every matvec's engine run;
        #: a supervisor sets it to interrupt a solver *inside* an SpMV
        #: (the solver sees RunCancelled propagate out of matvec).
        self.cancel = None
        # Seed the sub-matrix files once, on their owning nodes.
        for (u, v), b in blocks.items():
            raw = np.frombuffer(serialize_csr(b), dtype=np.uint8)
            self._a_raw_len[(u, v)] = len(raw)
            self._nnz[(u, v)] = b.nnz
            desc = ArrayDesc(a_name(u, v), length=len(raw), dtype="uint8",
                             block_elems=len(raw))
            write_array(self.engine.node_scratch(self.owner(u, v)), desc, raw)

    @property
    def shape(self) -> tuple[int, int]:
        return (self.n, self.n)

    def matvec(self, x: np.ndarray) -> np.ndarray:
        """One out-of-core SpMV as a DOoC program."""
        if x.shape != (self.n,):
            raise ValueError(f"x has shape {x.shape}, want ({self.n},)")
        t = self.matvec_count
        self.matvec_count += 1
        p = self.partition
        prog = Program(f"ooc-matvec-{t}")
        for (u, v), raw_len in self._a_raw_len.items():
            prog.initial_from_scratch(
                a_name(u, v), raw_len, home=self.owner(u, v),
                dtype="uint8", block_elems=raw_len)
        parts = p.split_vector(np.asarray(x, dtype=np.float64))
        for u in range(self.k):
            prog.initial_array(f"it{t}_x_{u}", parts[u], home=self.owner(0, u),
                               block_elems=len(parts[u]))
        for u in range(self.k):
            ylen = p.part_length(u)
            for v in range(self.k):
                prog.array(f"it{t}_y_{u}_{v}", ylen, block_elems=ylen)
                prog.add_task(
                    f"it{t}_mult_{u}_{v}", _mult_fn,
                    [a_name(u, v), f"it{t}_x_{v}"], [f"it{t}_y_{u}_{v}"],
                    flops=2.0 * self._nnz[(u, v)],
                    a=a_name(u, v), x=f"it{t}_x_{v}",
                )
            prog.array(f"it{t}_out_{u}", ylen, block_elems=ylen)
            if self.policy == "simple":
                prog.add_task(
                    f"it{t}_sum_{u}", _sum_fn,
                    [f"it{t}_y_{u}_{v}" for v in range(self.k)],
                    [f"it{t}_out_{u}"],
                    flops=float(ylen * (self.k - 1)),
                )
            else:
                groups: dict[int, list[int]] = {}
                for v in range(self.k):
                    groups.setdefault(self.owner(u, v), []).append(v)
                partials = []
                for node, vs in sorted(groups.items()):
                    if len(vs) == 1:
                        partials.append(f"it{t}_y_{u}_{vs[0]}")
                        continue
                    pname = f"it{t}_part_{u}_{node}"
                    prog.array(pname, ylen, block_elems=ylen)
                    prog.add_task(
                        f"it{t}_psum_{u}_{node}", _sum_fn,
                        [f"it{t}_y_{u}_{v}" for v in vs], [pname],
                        flops=float(ylen * (len(vs) - 1)),
                    )
                    partials.append(pname)
                prog.add_task(
                    f"it{t}_sum_{u}", _sum_fn, partials, [f"it{t}_out_{u}"],
                    flops=float(ylen * max(len(partials) - 1, 1)),
                )
        self.engine.run(prog, cancel=self.cancel)
        out = {u: self.engine.fetch(f"it{t}_out_{u}") for u in range(self.k)}
        self._cleanup(t)
        return p.join_vector(out)

    def _cleanup(self, t: int) -> None:
        """Unlink this matvec's per-iteration scratch files (the seeded x
        parts and any spilled temporaries); the sub-matrix files persist."""
        from repro.core.iofilter import delete_array_file, discover_arrays

        prefix = f"it{t}_"
        for node in range(self.engine.n_nodes):
            scratch = self.engine.node_scratch(node)
            for name in discover_arrays(scratch):
                if name.startswith(prefix):
                    delete_array_file(scratch, name)

    def diagonal(self) -> np.ndarray:
        """The matrix diagonal, read block by block from the stored files
        (needed by Jacobi; cheap: only the diagonal grid blocks load)."""
        from repro.core.iofilter import read_array
        from repro.spmv.csrfile import deserialize_csr

        diag = np.zeros(self.n)
        for u in range(self.k):
            raw_len = self._a_raw_len[(u, u)]
            desc = ArrayDesc(a_name(u, u), length=raw_len, dtype="uint8",
                             block_elems=raw_len)
            raw = read_array(
                self.engine.node_scratch(self.owner(u, u)), desc)
            block = deserialize_csr(raw)
            lo, hi = self.partition.part_range(u)
            dense_diag = np.zeros(block.nrows)
            for i in range(block.nrows):
                row = slice(block.indptr[i], block.indptr[i + 1])
                hits = np.nonzero(block.indices[row] == i)[0]
                if hits.size:
                    dense_diag[i] = block.values[row][hits[0]]
            diag[lo:hi] = dense_diag
        return diag
