"""An out-of-core blocked matrix as a reusable linear operator.

``OutOfCoreMatrix`` owns a DOoC engine whose scratch directories hold the
K x K binary-CSR sub-matrix files (seeded once); every ``matvec`` builds
and runs a DOoC program (multiplies + policy-dependent reductions).  The
Lanczos, Jacobi, and conjugate-gradient solvers all drive their heavy
SpMVs through this one operator — "developing more linear algebra kernels
[to] lower the bar for the application scientists" (Section VII).
"""

from __future__ import annotations

from pathlib import Path
from collections.abc import Callable
from typing import Dict

import numpy as np

from repro.core.engine import DOoCEngine, Program
from repro.core.iofilter import write_array
from repro.core.array import ArrayDesc
from repro.spmv.csr import CSRBlock
from repro.spmv.csrfile import serialize_csr
from repro.spmv.partition import GridPartition, column_owner
from repro.spmv.program import _mult_fn, _sum_fn, a_name


class OutOfCoreMatrix:
    """y = A @ x with A resident on disk, executed through DOoC."""

    def __init__(
        self,
        blocks: dict[tuple[int, int], CSRBlock],
        *,
        n_nodes: int = 1,
        workers_per_node: int | None = None,
        workers: int | None = None,
        memory_budget_per_node: int = 256 * 2**20,
        scratch_dir: str | Path | None = None,
        policy: str = "interleaved",
        owner: Callable[[int, int], int] | None = None,
        rng_seed: int = 0,
        gc_arrays: bool = True,
        engine_kwargs: dict | None = None,
    ):
        ks = sorted({u for u, _ in blocks})
        k = len(ks)
        if sorted(blocks) != [(u, v) for u in range(k) for v in range(k)]:
            raise ValueError("blocks must cover a complete K x K grid")
        n = sum(blocks[(u, 0)].nrows for u in range(k))
        self.partition = GridPartition(n, k)
        for (u, v), b in blocks.items():
            want = (self.partition.part_length(u), self.partition.part_length(v))
            if b.shape != want:
                raise ValueError(f"block {(u, v)} has shape {b.shape}, want {want}")
        if policy not in ("simple", "interleaved"):
            raise ValueError(f"unknown policy {policy!r}")
        self.policy = policy
        self.k = k
        self.n = n
        self.owner = owner or column_owner(k, n_nodes)
        # Extra engine knobs (fault plans, watchdog, worker plane) for
        # callers like the job server; they override the named defaults.
        eng_kwargs = dict(
            n_nodes=n_nodes,
            workers_per_node=workers_per_node,
            workers=workers,
            memory_budget_per_node=memory_budget_per_node,
            scratch_dir=scratch_dir,
            rng_seed=rng_seed,
            gc_arrays=gc_arrays,
        )
        eng_kwargs.update(engine_kwargs or {})
        self.engine = DOoCEngine(**eng_kwargs)
        self._a_raw_len: dict[tuple[int, int], int] = {}
        self._nnz: dict[tuple[int, int], int] = {}
        self.matvec_count = 0
        #: one summary dict per engine program run through this operator
        #: (matvecs, frozen-column product programs, async rounds):
        #: ``{"sweep", "mode", "active", "tasks", "disk_bytes_read",
        #: "wall_seconds"}`` — the accounting the convergence bench and
        #: the workset-dropout invariant read.
        self.sweep_log: list[dict] = []
        self.last_sweep: dict | None = None
        #: optional CancelToken threaded into every matvec's engine run;
        #: a supervisor sets it to interrupt a solver *inside* an SpMV
        #: (the solver sees RunCancelled propagate out of matvec).
        self.cancel = None
        # Seed the sub-matrix files once, on their owning nodes.
        for (u, v), b in blocks.items():
            raw = np.frombuffer(serialize_csr(b), dtype=np.uint8)
            self._a_raw_len[(u, v)] = len(raw)
            self._nnz[(u, v)] = b.nnz
            desc = ArrayDesc(a_name(u, v), length=len(raw), dtype="uint8",
                             block_elems=len(raw))
            write_array(self.engine.node_scratch(self.owner(u, v)), desc, raw)

    @property
    def shape(self) -> tuple[int, int]:
        return (self.n, self.n)

    def matvec(self, x: np.ndarray, *, workset: "SweepWorkset | None" = None,
               frontier: bool = False) -> np.ndarray:
        """One out-of-core SpMV as a DOoC program.

        ``workset`` runs an incremental sweep: frozen columns' cached
        products are seeded into the program (same array names, same
        reduction-input positions) instead of being recomputed, so their
        sub-matrix files are never read and the float summation order is
        unchanged — the result stays bit-identical to the bulk sweep.

        ``frontier=True`` runs sparse frontier propagation: columns whose
        sub-vector is entirely zero contribute exactly zero and are
        skipped outright; rows with no surviving input get a zero output
        without scheduling any task.  (Sums accumulate into a fresh
        +0.0 buffer, so dropping zero summands cannot change bits.)
        """
        if workset is not None and frontier:
            raise ValueError("workset and frontier modes are mutually "
                             "exclusive")
        if x.shape != (self.n,):
            raise ValueError(f"x has shape {x.shape}, want ({self.n},)")
        t = self.matvec_count
        self.matvec_count += 1
        p = self.partition
        parts = p.split_vector(np.asarray(x, dtype=np.float64))
        if workset is not None:
            if workset.operator is not self:
                raise ValueError("workset belongs to a different operator")
            active, _ = workset.refresh(parts)
            mode = "workset"
        elif frontier:
            active = [v for v in range(self.k) if np.any(parts[v])]
            mode = "frontier"
        else:
            active = list(range(self.k))
            mode = "full"
        active_set = frozenset(active)
        frozen_set = workset.frozen if workset is not None else frozenset()
        meta_extra: dict = {}
        if mode == "workset":
            meta_extra = {"workset_sweep": t,
                          "workset_active": tuple(active),
                          "workset_frozen": tuple(sorted(frozen_set))}
        elif mode == "frontier":
            meta_extra = {"frontier": tuple(active)}
        prog = Program(f"ooc-matvec-{t}")
        for (u, v), raw_len in self._a_raw_len.items():
            if v in active_set:
                prog.initial_from_scratch(
                    a_name(u, v), raw_len, home=self.owner(u, v),
                    dtype="uint8", block_elems=raw_len)
        for v in active:
            prog.initial_array(f"it{t}_x_{v}", parts[v], home=self.owner(0, v),
                               block_elems=len(parts[v]))
        produced: list[int] = []
        for u in range(self.k):
            ylen = p.part_length(u)
            ins: list[int] = []
            for v in range(self.k):
                yn = f"it{t}_y_{u}_{v}"
                if v in active_set:
                    prog.array(yn, ylen, block_elems=ylen)
                    prog.add_task(
                        f"it{t}_mult_{u}_{v}", _mult_fn,
                        [a_name(u, v), f"it{t}_x_{v}"], [yn],
                        flops=2.0 * self._nnz[(u, v)],
                        a=a_name(u, v), x=f"it{t}_x_{v}", **meta_extra,
                    )
                    ins.append(v)
                elif v in frozen_set:
                    # Frozen column: its product is a constant; seed it in
                    # the exact input position a fresh multiply would fill.
                    prog.initial_array(yn, workset.product(u, v),
                                       home=self.owner(u, v),
                                       block_elems=ylen)
                    ins.append(v)
                # frontier-inactive columns contribute exactly zero: no
                # input array at all
            if not ins:
                continue  # y_u is exactly zero; nothing to schedule
            produced.append(u)
            prog.array(f"it{t}_out_{u}", ylen, block_elems=ylen)
            self._reduce_tasks(prog, t, u, ins, ylen, meta_extra)
        report = self.engine.run(prog, cancel=self.cancel)
        produced_set = set(produced)
        out = {u: (self.engine.fetch(f"it{t}_out_{u}")
                   if u in produced_set else np.zeros(p.part_length(u)))
               for u in range(self.k)}
        self._cleanup(t)
        self._log_sweep(t, mode, active, len(prog.tasks), report)
        if frontier:
            self.engine.tracer.counter(-1, "driver", "converge",
                                       "frontier_size", len(active), sweep=t)
        return p.join_vector(out)

    def _reduce_tasks(self, prog: Program, t: int, u: int, ins: list[int],
                      ylen: int, meta_extra: dict) -> None:
        """Row ``u``'s reduction over the included columns ``ins`` — the
        same policy tree (and float summation order) as the bulk sweep
        restricted to ``ins``."""
        if self.policy == "simple":
            prog.add_task(
                f"it{t}_sum_{u}", _sum_fn,
                [f"it{t}_y_{u}_{v}" for v in ins], [f"it{t}_out_{u}"],
                flops=float(ylen * (len(ins) - 1)), **meta_extra,
            )
            return
        groups: dict[int, list[int]] = {}
        for v in ins:
            groups.setdefault(self.owner(u, v), []).append(v)
        partials = []
        for node, vs in sorted(groups.items()):
            if len(vs) == 1:
                partials.append(f"it{t}_y_{u}_{vs[0]}")
                continue
            pname = f"it{t}_part_{u}_{node}"
            prog.array(pname, ylen, block_elems=ylen)
            prog.add_task(
                f"it{t}_psum_{u}_{node}", _sum_fn,
                [f"it{t}_y_{u}_{v}" for v in vs], [pname],
                flops=float(ylen * (len(vs) - 1)), **meta_extra,
            )
            partials.append(pname)
        prog.add_task(
            f"it{t}_sum_{u}", _sum_fn, partials, [f"it{t}_out_{u}"],
            flops=float(ylen * max(len(partials) - 1, 1)), **meta_extra,
        )

    def _log_sweep(self, tag: int, mode: str, active, tasks: int,
                   report) -> dict:
        entry = {
            "sweep": tag,
            "mode": mode,
            "active": tuple(active),
            "tasks": tasks,
            "disk_bytes_read": int(sum(
                per.get("disk_bytes_read", 0)
                for per in report.metrics.values())),
            "wall_seconds": report.wall_seconds,
        }
        self.sweep_log.append(entry)
        self.last_sweep = entry
        self.engine.tracer.counter(-1, "driver", "converge", "sweep_tasks",
                                   tasks, sweep=tag, mode=mode)
        return entry

    def column_products(self, v: int, x_v: np.ndarray) -> dict[int, np.ndarray]:
        """All of one column's products, ``y_{u,v} = A_{u,v} @ x_v``.

        One slim multiply-only program whose outputs are terminal and
        fetchable.  :class:`SweepWorkset` calls this once when column
        ``v`` freezes; because the multiply kernel is deterministic, the
        cached products are bit-identical to what later sweeps would
        have recomputed from the stationary ``x_v``.
        """
        x_v = np.asarray(x_v, dtype=np.float64)
        want = (self.partition.part_length(v),)
        if x_v.shape != want:
            raise ValueError(f"x_v has shape {x_v.shape}, want {want}")
        t = self.matvec_count
        self.matvec_count += 1
        prog = Program(f"ooc-colprod-{t}")
        xn = f"it{t}_x_{v}"
        prog.initial_array(xn, x_v, home=self.owner(0, v),
                           block_elems=len(x_v))
        for u in range(self.k):
            raw_len = self._a_raw_len[(u, v)]
            prog.initial_from_scratch(
                a_name(u, v), raw_len, home=self.owner(u, v),
                dtype="uint8", block_elems=raw_len)
            ylen = self.partition.part_length(u)
            yn = f"it{t}_y_{u}_{v}"
            prog.array(yn, ylen, block_elems=ylen)
            prog.add_task(
                f"it{t}_mult_{u}_{v}", _mult_fn,
                [a_name(u, v), xn], [yn],
                flops=2.0 * self._nnz[(u, v)],
                a=a_name(u, v), x=xn, frozen_column=v,
            )
        report = self.engine.run(prog, cancel=self.cancel)
        out = {u: np.array(self.engine.fetch(f"it{t}_y_{u}_{v}"),
                           dtype=np.float64, copy=True)
               for u in range(self.k)}
        self._cleanup(t)
        self._log_sweep(t, "colprod", (v,), len(prog.tasks), report)
        return out

    def stale_sweep(self, versions: list[dict[int, np.ndarray]],
                    choice: dict[tuple[int, int], int]) -> dict[int, np.ndarray]:
        """One chaotic-relaxation round: ``y_u = sum_v A_{u,v} @ x_v^(-age)``.

        ``versions[age]`` holds the iterate's parts ``age`` rounds ago
        (0 = newest); ``choice[(u, v)]`` is the age each multiply reads —
        the async-Jacobi driver draws it from a seeded generator, bounded
        by the staleness knob, so a run models uncoordinated progress yet
        stays deterministic and replayable.  Returns the output parts.
        """
        if not versions:
            raise ValueError("need at least one iterate version")
        k = self.k
        p = self.partition
        for (u, v), age in choice.items():
            if not (0 <= age < len(versions)):
                raise ValueError(f"choice[{(u, v)}] = {age} out of range")
        t = self.matvec_count
        self.matvec_count += 1
        prog = Program(f"ooc-async-{t}")
        for (u, v), raw_len in self._a_raw_len.items():
            prog.initial_from_scratch(
                a_name(u, v), raw_len, home=self.owner(u, v),
                dtype="uint8", block_elems=raw_len)
        used = sorted({(v, choice.get((u, v), 0))
                       for u in range(k) for v in range(k)})
        for v, age in used:
            part = np.asarray(versions[age][v], dtype=np.float64)
            prog.initial_array(f"it{t}_x_{v}_s{age}", part,
                               home=self.owner(0, v), block_elems=len(part))
        for u in range(k):
            ylen = p.part_length(u)
            for v in range(k):
                age = choice.get((u, v), 0)
                yn = f"it{t}_y_{u}_{v}"
                prog.array(yn, ylen, block_elems=ylen)
                prog.add_task(
                    f"it{t}_mult_{u}_{v}", _mult_fn,
                    [a_name(u, v), f"it{t}_x_{v}_s{age}"], [yn],
                    flops=2.0 * self._nnz[(u, v)],
                    a=a_name(u, v), x=f"it{t}_x_{v}_s{age}", staleness=age,
                )
            prog.array(f"it{t}_out_{u}", ylen, block_elems=ylen)
            self._reduce_tasks(prog, t, u, list(range(k)), ylen, {})
        report = self.engine.run(prog, cancel=self.cancel)
        out = {u: self.engine.fetch(f"it{t}_out_{u}") for u in range(k)}
        self._cleanup(t)
        self._log_sweep(t, "async", tuple(range(k)), len(prog.tasks), report)
        max_age = max(choice.values()) if choice else 0
        self.engine.tracer.instant(-1, "driver", "converge", "async_round",
                                   sweep=t, max_age=max_age)
        return out

    def _cleanup(self, t: int) -> None:
        """Unlink this matvec's per-iteration scratch files (the seeded x
        parts and any spilled temporaries); the sub-matrix files persist."""
        from repro.core.iofilter import delete_array_file, discover_arrays

        prefix = f"it{t}_"
        for node in range(self.engine.n_nodes):
            scratch = self.engine.node_scratch(node)
            for name in discover_arrays(scratch):
                if name.startswith(prefix):
                    delete_array_file(scratch, name)

    def diagonal(self) -> np.ndarray:
        """The matrix diagonal, read block by block from the stored files
        (needed by Jacobi; cheap: only the diagonal grid blocks load)."""
        from repro.core.iofilter import read_array
        from repro.spmv.csrfile import deserialize_csr

        diag = np.zeros(self.n)
        for u in range(self.k):
            raw_len = self._a_raw_len[(u, u)]
            desc = ArrayDesc(a_name(u, u), length=raw_len, dtype="uint8",
                             block_elems=raw_len)
            raw = read_array(
                self.engine.node_scratch(self.owner(u, u)), desc)
            block = deserialize_csr(raw)
            lo, hi = self.partition.part_range(u)
            dense_diag = np.zeros(block.nrows)
            for i in range(block.nrows):
                row = slice(block.indptr[i], block.indptr[i + 1])
                hits = np.nonzero(block.indices[row] == i)[0]
                if hits.size:
                    dense_diag[i] = block.values[row][hits[0]]
            diag[lo:hi] = dense_diag
        return diag


class SweepWorkset:
    """Cached products of frozen columns for incremental sweeps.

    When a :class:`~repro.core.convergence.ConvergenceTracker` declares a
    column stationary, ``freeze(v, x_v)`` computes ``A_{u,v} @ x_v`` for
    every row once (one slim column-products program) and later
    ``matvec(x, workset=...)`` calls seed those cached arrays in place of
    fresh multiplies — the frozen column's sub-matrix files drop off the
    per-sweep read path entirely.

    The cache is **content-addressed by the iterate's bits**: a frozen
    column may hold up to two phase entries (near convergence, Jacobi
    iterates often settle into an exact period-2 last-ulp oscillation
    rather than a period-1 fixpoint), and ``refresh`` selects whichever
    entry matches the incoming ``x_v`` bitwise.  A frozen column whose
    ``x_v`` matches *no* cached phase is thawed automatically, so a stale
    cache can never change the result — dropout removes work, never
    accuracy.
    """

    #: phase entries kept per frozen column (period-1 or period-2 cycles)
    MAX_PHASES = 2

    def __init__(self, operator: OutOfCoreMatrix):
        self.operator = operator
        #: column -> list of (x bits, products-by-row) phase entries
        self._entries: Dict[int, list[tuple[np.ndarray,
                                            Dict[int, np.ndarray]]]] = {}
        #: column -> products selected by the last ``refresh``
        self._selected: Dict[int, Dict[int, np.ndarray]] = {}
        #: freeze-time product tasks spent so far (dropout accounting)
        self.aux_tasks = 0

    @property
    def frozen(self) -> frozenset[int]:
        return frozenset(self._entries)

    def freeze(self, v: int, x_v: np.ndarray) -> int:
        """Cache column ``v``'s products at phase value ``x_v``; returns
        the number of auxiliary (product-cache) tasks spent."""
        x_v = np.array(x_v, dtype=np.float64, copy=True)
        entries = self._entries.setdefault(v, [])
        if any(np.array_equal(x_v, cached) for cached, _ in entries):
            return 0
        products = self.operator.column_products(v, x_v)
        entries.append((x_v, products))
        del entries[:-self.MAX_PHASES]
        self._selected.setdefault(v, products)
        self.aux_tasks += self.operator.k
        return self.operator.k

    def thaw(self, v: int) -> None:
        self._entries.pop(v, None)
        self._selected.pop(v, None)

    def product(self, u: int, v: int) -> np.ndarray:
        return self._selected[v][u]

    def refresh(self, parts: Dict[int, np.ndarray],
                ) -> tuple[list[int], tuple[int, ...]]:
        """Select the phase entry matching each frozen column's incoming
        iterate; thaw columns that match none.  Returns the active column
        list and the columns thawed."""
        thawed = []
        for v in sorted(self._entries):
            selected = None
            for cached, products in self._entries[v]:
                if np.array_equal(parts[v], cached):
                    selected = products
                    break
            if selected is None:
                thawed.append(v)
            else:
                self._selected[v] = selected
        for v in thawed:
            self.thaw(v)
        active = [v for v in range(self.operator.k) if v not in self._entries]
        return active, tuple(thawed)
