"""Heartbeat-driven membership: the alive → suspect → dead state machine.

Each local scheduler piggybacks a periodic ``{"op": "heartbeat"}`` message
on its existing control stream to the global scheduler, which feeds the
beats into a :class:`MembershipTracker`.  A node that misses beats long
enough is *quarantined* as a suspect; one that stays silent past the dead
threshold is *declared dead* and evicted cluster-wide.

The crucial distinction from the stall watchdog: a node that is merely
*slow* — churning through I/O retries, re-executing a crashed task — keeps
heartbeating, because the beacon comes from the scheduler loop, not from
task progress.  Only genuine silence (a dead filter stack) escalates, so
retry churn is never misdiagnosed as death and a corpse is never
misdiagnosed as retry churn.

The tracker is pure state + explicit clocks (``now`` is always passed in),
so the escalation logic is unit-testable without threads or sleeps.
"""

from __future__ import annotations

from dataclasses import dataclass

__all__ = ["ALIVE", "SUSPECT", "DEAD", "MembershipConfig",
           "MembershipTracker"]

ALIVE = "alive"
SUSPECT = "suspect"
DEAD = "dead"


@dataclass(frozen=True)
class MembershipConfig:
    """Failure-detector tuning knobs (see docs/RECOVERY.md).

    ``heartbeat_s`` is the beacon period; ``suspect_after_s`` /
    ``dead_after_s`` are silence thresholds.  The defaults tolerate a few
    missed beats before quarantine and several more before eviction —
    tighten for tests, loosen for heavily oversubscribed hosts.
    """

    heartbeat_s: float = 0.05
    suspect_after_s: float = 0.4
    dead_after_s: float = 1.2

    def __post_init__(self) -> None:
        if self.heartbeat_s <= 0:
            raise ValueError("heartbeat_s must be positive")
        if not self.heartbeat_s < self.suspect_after_s < self.dead_after_s:
            raise ValueError(
                "thresholds must satisfy "
                "heartbeat_s < suspect_after_s < dead_after_s")

    @property
    def poll_s(self) -> float:
        """How often the detector should re-examine silence."""
        return self.heartbeat_s


class MembershipTracker:
    """Tracks per-node liveness from timestamped heartbeats.

    Drive it with :meth:`beat` (a heartbeat arrived) and :meth:`check`
    (time passed; returns newly fired transitions).  ``DEAD`` is
    absorbing: a zombie's late beat is ignored, because eviction and
    re-homing have already been broadcast in its name.
    """

    def __init__(self, nodes: int, config: MembershipConfig | None = None):
        if nodes < 1:
            raise ValueError("nodes must be >= 1")
        self.config = config or MembershipConfig()
        self._state: dict[int, str] = {n: ALIVE for n in range(nodes)}
        self._last_beat: dict[int, float] | None = None  # set on first event

    def _ages(self, now: float) -> dict[int, float]:
        if self._last_beat is None:
            self._last_beat = {n: now for n in self._state}
        return {n: now - t for n, t in self._last_beat.items()}

    def beat(self, node: int, now: float) -> str | None:
        """Record a heartbeat; returns ``"alive"`` if a suspect recovered."""
        if node not in self._state:
            raise ValueError(f"unknown node {node}")
        self._ages(now)
        assert self._last_beat is not None
        if self._state[node] == DEAD:
            return None  # too late: the cluster already moved on
        self._last_beat[node] = now
        if self._state[node] == SUSPECT:
            self._state[node] = ALIVE
            return ALIVE
        return None

    def check(self, now: float) -> list[tuple[int, str]]:
        """Escalate silent nodes; returns ``[(node, new_state), ...]``.

        A node silent past ``dead_after_s`` yields both transitions in
        order (suspect, then dead) if the suspect phase was never observed
        by a poll.
        """
        transitions: list[tuple[int, str]] = []
        cfg = self.config
        for node, age in sorted(self._ages(now).items()):
            state = self._state[node]
            if state == DEAD:
                continue
            if state == ALIVE and age >= cfg.suspect_after_s:
                self._state[node] = state = SUSPECT
                transitions.append((node, SUSPECT))
            if state == SUSPECT and age >= cfg.dead_after_s:
                self._state[node] = DEAD
                transitions.append((node, DEAD))
        return transitions

    # -- introspection ------------------------------------------------------

    def state(self, node: int) -> str:
        return self._state[node]

    def dead_nodes(self) -> list[int]:
        return sorted(n for n, s in self._state.items() if s == DEAD)

    def quarantined(self) -> list[int]:
        """Nodes currently under suspicion or declared dead."""
        return sorted(n for n, s in self._state.items() if s != ALIVE)

    def snapshot(self, now: float) -> dict[int, dict]:
        """Per-node ``{"state": ..., "silent_s": ...}`` for diagnoses."""
        ages = self._ages(now)
        return {
            n: {"state": self._state[n], "silent_s": round(ages[n], 3)}
            for n in sorted(self._state)
        }
