"""Iteration-boundary checkpoints: checksummed blocks + atomic manifests.

Layout of a checkpoint directory::

    ckpt-00000012-x.blk          encoded payload of array "x"
    ckpt-00000012-history.blk    ... one .blk file per state array ...
    ckpt-00000012.ckpt           JSON manifest, written LAST

Payloads are encoded by the manager's codec (:mod:`repro.core.codecs`;
``raw`` = little-endian bytes as before) and each manifest block entry
records the codec name, so checkpoint directories self-describe.  Every
``.blk`` payload and the manifest itself go through
:func:`repro.util.atomicio.atomic_write` (temp file → fsync → rename), and
the manifest — carrying a sha256 of each payload's on-disk bytes — is
written only after all payloads are durable.  A crash at any point therefore leaves either a
complete, verifiable checkpoint or no manifest for that step at all; a
manifest whose checksums do not match (torn by a dying disk, truncated,
bit-flipped) is *rejected* and :meth:`CheckpointManager.load_latest` falls
back to the previous good step.

``extra`` carries JSON state (iteration counters, RNG state via
:func:`rng_state`); exact float state is stored as arrays, not JSON, so a
resumed solver reproduces the remaining iterates bit-identically.
"""

from __future__ import annotations

import hashlib
import json
import re
from dataclasses import dataclass, field
from pathlib import Path

import numpy as np

from repro.core.codecs import get_codec, resolve_codec
from repro.core.errors import CodecError, CodecMismatchError, RecoveryError
from repro.core.iofilter import escape_name, unescape_name
from repro.util.atomicio import atomic_write

__all__ = ["Checkpoint", "CheckpointManager", "rng_state", "restore_rng"]

MANIFEST_RE = re.compile(r"^ckpt-(\d{8})\.ckpt$")
PAYLOAD_RE = re.compile(r"^ckpt-(\d{8})-.+\.blk$")
FORMAT_VERSION = 1


@dataclass
class Checkpoint:
    """One restored checkpoint: step + state arrays + JSON extras."""

    step: int
    arrays: dict[str, np.ndarray] = field(default_factory=dict)
    extra: dict = field(default_factory=dict)


class CheckpointManager:
    """Write/verify/load checkpoints in one directory.

    ``keep`` bounds disk usage: after a successful save, manifests older
    than the newest ``keep`` (and their payloads) are pruned.  Keep at
    least 2 so a checkpoint torn by a mid-save crash still has a good
    predecessor to fall back to.
    """

    def __init__(self, directory: str | Path, *, keep: int = 2,
                 tracer=None, node: int = -1, codec: str | None = None):
        if keep < 1:
            raise ValueError("keep must be >= 1")
        self.dir = Path(directory)
        self.dir.mkdir(parents=True, exist_ok=True)
        self.keep = keep
        self.tracer = tracer
        self.node = node
        #: payload codec, snapshotted once at construction (None samples
        #: DOOC_CODEC — the same snapshot rule as the engine's data
        #: plane).  Manifests record the codec per payload; restoring a
        #: checkpoint written under a *different* codec raises
        #: :class:`CodecMismatchError` rather than guessing.
        self.codec = resolve_codec(codec)
        self.writes = 0

    # -- paths ---------------------------------------------------------------

    def _manifest_path(self, step: int) -> Path:
        return self.dir / f"ckpt-{step:08d}.ckpt"

    def _block_name(self, step: int, array: str) -> str:
        return f"ckpt-{step:08d}-{escape_name(array)}.blk"

    def steps(self) -> list[int]:
        """Steps with a manifest present, ascending (unverified)."""
        out = []
        for path in self.dir.iterdir():
            m = MANIFEST_RE.match(path.name)
            if m:
                out.append(int(m.group(1)))
        return sorted(out)

    # -- save ----------------------------------------------------------------

    def save(self, step: int, arrays: dict[str, np.ndarray],
             extra: dict | None = None) -> Path:
        """Persist one checkpoint; the manifest lands last, atomically."""
        if step < 0:
            raise ValueError("step must be non-negative")
        codec = get_codec(self.codec)
        blocks = {}
        for name, value in arrays.items():
            arr = np.ascontiguousarray(value)
            payload = codec.encode(arr.tobytes(), arr.dtype.itemsize)
            fname = self._block_name(step, name)
            atomic_write(self.dir / fname, payload)
            # sha256 covers the *encoded* on-disk bytes: load verifies
            # the file exactly as written, before any decode runs.
            blocks[name] = {
                "file": fname,
                "sha256": hashlib.sha256(payload).hexdigest(),
                "dtype": str(arr.dtype),
                "shape": list(arr.shape),
                "codec": self.codec,
                "raw_nbytes": arr.nbytes,
            }
        manifest = {
            "format": FORMAT_VERSION,
            "step": step,
            "blocks": blocks,
            "extra": extra or {},
        }
        path = self._manifest_path(step)
        atomic_write(path, json.dumps(manifest, sort_keys=True).encode())
        self.writes += 1
        if self.tracer is not None:
            self.tracer.instant(self.node, "ckpt", "recovery",
                                "checkpoint_write", step=step,
                                arrays=len(blocks))
        self._prune(step)
        return path

    def _referenced_payloads(self) -> set[str]:
        """Payload file names claimed by any surviving (readable) manifest.

        A manifest that does not parse contributes nothing here — but its
        payloads are still swept below, because the reference set is
        computed from what *survives*, not from what the stale manifest
        happened to say.
        """
        files: set[str] = set()
        for step in self.steps():
            try:
                entry = json.loads(self._manifest_path(step).read_text())
                for b in entry.get("blocks", {}).values():
                    files.add(str(b["file"]))
            except (OSError, ValueError, KeyError, TypeError):
                continue
        return files

    def _prune(self, latest_step: int) -> None:
        """Drop manifests beyond ``keep``, then sweep unreferenced payloads.

        The old implementation deleted only the payloads the stale
        manifest itself listed — so a manifest that had gone unreadable
        (the very corruption ``load_latest`` falls back over) orphaned
        its ``.blk`` payloads *forever*, and payloads from a save that
        crashed before its manifest landed were never collected either.
        Sweeping against the referenced-set of surviving manifests
        guarantees the directory holds exactly the payloads some live
        manifest names (for steps up to ``latest_step``).
        """
        steps = [s for s in self.steps() if s <= latest_step]
        for stale in steps[: -self.keep] if len(steps) > self.keep else []:
            self._manifest_path(stale).unlink(missing_ok=True)
        referenced = self._referenced_payloads()
        for path in self.dir.iterdir():
            m = PAYLOAD_RE.match(path.name)
            if m and int(m.group(1)) <= latest_step \
                    and path.name not in referenced:
                path.unlink(missing_ok=True)

    # -- load ----------------------------------------------------------------

    def load(self, step: int) -> Checkpoint:
        """Load + verify one step; :class:`RecoveryError` on any corruption."""
        path = self._manifest_path(step)
        try:
            manifest = json.loads(path.read_text())
        except FileNotFoundError:
            raise RecoveryError(f"no checkpoint manifest for step {step}")
        except (OSError, ValueError) as exc:
            raise RecoveryError(f"unreadable manifest {path.name}: {exc}")
        if not isinstance(manifest, dict) or manifest.get("step") != step \
                or manifest.get("format") != FORMAT_VERSION:
            raise RecoveryError(f"malformed manifest {path.name}")
        arrays: dict[str, np.ndarray] = {}
        for name, entry in manifest.get("blocks", {}).items():
            entry_codec = entry.get("codec", "raw")  # pre-codec manifests
            if entry_codec != self.codec:
                raise CodecMismatchError(
                    f"checkpoint step {step} stores {name!r} under codec "
                    f"{entry_codec!r} but this manager restores with "
                    f"{self.codec!r}; restore with the original codec or "
                    "re-encode the checkpoint explicitly")
            blk = self.dir / entry["file"]
            try:
                payload = blk.read_bytes()
            except OSError as exc:
                raise RecoveryError(f"missing payload {blk.name}: {exc}")
            if hashlib.sha256(payload).hexdigest() != entry["sha256"]:
                raise RecoveryError(
                    f"checksum mismatch on {blk.name} (step {step})")
            dtype = np.dtype(entry["dtype"])
            raw_nbytes = int(entry.get(
                "raw_nbytes",
                int(np.prod(entry["shape"], dtype=np.int64)) * dtype.itemsize))
            try:
                raw = get_codec(entry_codec).decode(
                    payload, raw_nbytes, dtype.itemsize)
            except CodecError as exc:
                raise RecoveryError(
                    f"payload {blk.name} does not decode (step {step}): "
                    f"{exc}") from exc
            arrays[name] = np.frombuffer(
                raw, dtype=dtype).reshape(entry["shape"]).copy()
        return Checkpoint(step=step, arrays=arrays,
                          extra=manifest.get("extra", {}))

    def load_latest(self) -> Checkpoint | None:
        """Newest checkpoint that verifies; corrupt ones are skipped.

        Returns None when no (intact) checkpoint exists — the caller
        starts from scratch.
        """
        for step in reversed(self.steps()):
            try:
                ckpt = self.load(step)
            except CodecMismatchError:
                # Not corruption: the checkpoint is intact but encoded
                # under a different codec.  Falling back past it would
                # silently restart from older state (or from scratch) —
                # surface the named refusal instead.
                raise
            except RecoveryError as exc:
                if self.tracer is not None:
                    self.tracer.instant(self.node, "ckpt", "recovery",
                                        "checkpoint_reject", step=step,
                                        error=str(exc))
                continue
            if self.tracer is not None:
                self.tracer.instant(self.node, "ckpt", "recovery",
                                    "checkpoint_restore", step=step)
            return ckpt
        return None


def rng_state(rng: np.random.Generator) -> dict:
    """JSON-serializable snapshot of a NumPy generator's exact state."""
    return {"bit_generator": type(rng.bit_generator).__name__,
            "state": rng.bit_generator.state}


def restore_rng(snapshot: dict) -> np.random.Generator:
    """Rebuild a generator that continues the saved stream bit-identically."""
    name = snapshot["bit_generator"]
    cls = getattr(np.random, name, None)
    if cls is None:
        raise RecoveryError(f"unknown bit generator {name!r}")
    bitgen = cls()
    state = snapshot["state"]
    if isinstance(state, dict) and "state" in state and isinstance(
            state["state"], dict):
        # JSON round-trips dict keys as-is; state ints may arrive as-is too.
        bitgen.state = state
    else:
        bitgen.state = state
    return np.random.Generator(bitgen)


# `unescape_name` is re-exported so tooling reading a checkpoint directory
# can map .blk files back to array names without importing core internals.
_ = unescape_name
