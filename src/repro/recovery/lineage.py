"""Block lineage: durable records + the reconstruction planner.

The DAG already *is* the lineage — every derived array names exactly one
producing task, and the global scheduler homes a task's outputs on the
node that ran it.  Two consequences fall out of the write-once discipline
(DOoC §3) and make node-loss recovery cheap:

* every completed producer of an array homed on a dead node necessarily
  ran **on that node**, so the set of tasks to re-execute is exactly the
  dead node's lineage — no distributed snapshot, no rollback;
* survivors' cached copies of lost blocks stay byte-valid forever (sealed
  blocks are immutable), so reconstruction never touches consumer caches
  and no coherency protocol is needed.

:func:`plan_reconstruction` computes the *minimal transitive* replay set:
only lost arrays that something still needs (an incomplete consumer, or a
terminal result) pull their producers in, and the closure walks backwards
only through inputs that are themselves unavailable (lost with the node,
or garbage-collected).  Input arrays re-load from the shared filesystem;
derived arrays recompute.

:class:`LineageLog` persists the same facts (task → inputs/outputs/node,
completions, recoveries) as an append-only JSONL file in the run's scratch
root, so a post-mortem can reconstruct what the scheduler knew.
"""

from __future__ import annotations

import json
import os
from dataclasses import dataclass, field
from pathlib import Path

from repro.core.dag import TaskDAG

__all__ = ["LineageLog", "ReconstructionPlan", "plan_reconstruction"]


class LineageLog:
    """Append-only JSONL lineage journal (one fact per line).

    Records are flushed per write and fsynced at :meth:`sync` points
    (recovery planning, shutdown) — task completion is not stalled behind
    a disk barrier, but every recovery decision is preceded by one.
    """

    def __init__(self, path: str | Path):
        self.path = Path(path)
        self.path.parent.mkdir(parents=True, exist_ok=True)
        self._fh = open(self.path, "a", encoding="utf-8")

    def record(self, kind: str, **fields) -> None:
        entry = {"kind": kind, **fields}
        self._fh.write(json.dumps(entry, sort_keys=True) + "\n")
        self._fh.flush()

    def sync(self) -> None:
        os.fsync(self._fh.fileno())

    def close(self) -> None:
        if not self._fh.closed:
            try:
                self.sync()
            except (OSError, ValueError):  # pragma: no cover - defensive
                pass
            self._fh.close()

    @staticmethod
    def read(path: str | Path) -> list[dict]:
        """Parse a lineage journal back into records."""
        out = []
        with open(path, encoding="utf-8") as fh:
            for line in fh:
                line = line.strip()
                if line:
                    out.append(json.loads(line))
        return out


@dataclass
class ReconstructionPlan:
    """What it takes to recover from one node's permanent death."""

    dead: int
    #: initial arrays homed on the corpse: re-home + re-read from the
    #: shared filesystem (the paper's GPFS outlives any compute node)
    reseed: list[str] = field(default_factory=list)
    #: completed tasks to re-execute, in topological order
    replay: list[str] = field(default_factory=list)
    #: incomplete tasks assigned to the corpse: move to survivors
    reassign: list[str] = field(default_factory=list)
    #: every array homed on the corpse (reporting / eviction bookkeeping)
    lost_arrays: list[str] = field(default_factory=list)
    #: total blocks those arrays span — the data the node took with it
    lost_blocks: int = 0


def plan_reconstruction(
    dag: TaskDAG,
    homes: dict[str, int],
    assignment: dict[str, int],
    dead: int,
    *,
    descs: dict | None = None,
    collected: set[str] | None = None,
) -> ReconstructionPlan:
    """Plan the minimal recovery for ``dead``'s permanent loss.

    ``collected`` names arrays garbage-collected cluster-wide; a replay
    task needing one pulls its producer into the replay set too (the
    blocks exist nowhere, but their lineage still does).
    """
    collected = collected or set()
    initial = dag.initial_arrays
    lost = sorted(a for a, h in homes.items() if h == dead)
    lost_set = set(lost)

    def unavailable(array: str) -> bool:
        return array in lost_set or array in collected

    # Lost derived arrays something still needs: a consumer that has not
    # completed, or no consumer at all (a terminal result the caller will
    # fetch).  Fully-consumed intermediates stay dead — minimal set.
    needed = []
    for a in lost:
        if a in initial:
            continue
        producer = dag.producer[a]
        if producer not in dag.completed:
            continue  # never produced; the reassignment below re-runs it
        consumers = dag.consumers_of(a)
        if not consumers or any(c not in dag.completed for c in consumers):
            needed.append(a)

    replay: set[str] = set()
    stack = [dag.producer[a] for a in needed]
    while stack:
        t = stack.pop()
        if t in replay:
            continue
        replay.add(t)
        for a in dag.tasks[t].inputs:
            if a in initial:
                continue  # re-seeded from the filesystem if it was lost
            if unavailable(a):
                stack.append(dag.producer[a])

    topo_index = {name: i for i, name in enumerate(dag.topological_order())}
    reassign = sorted(
        t for t, node in assignment.items()
        if node == dead and t not in dag.completed
    )
    lost_blocks = 0
    if descs is not None:
        lost_blocks = sum(len(list(descs[a].blocks())) for a in lost)
    return ReconstructionPlan(
        dead=dead,
        reseed=[a for a in lost if a in initial],
        replay=sorted(replay, key=lambda t: topo_index[t]),
        reassign=reassign,
        lost_arrays=lost,
        lost_blocks=lost_blocks,
    )
