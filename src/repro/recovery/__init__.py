"""Permanent-failure recovery: membership, lineage, checkpoint/restart.

PR 2's fault machinery handles *transient* trouble (an I/O retry, a lost
message, a crashed task attempt).  This package handles the failure mode
the paper's target machines actually exhibit over multi-hour runs: a node
that goes away and never comes back.

* :mod:`repro.recovery.membership` — a heartbeat-driven failure detector
  (alive → suspect → dead) the global scheduler polls;
* :mod:`repro.recovery.lineage` — durable block lineage and the planner
  computing the minimal transitive set of producer tasks to re-execute,
  exploiting write-once immutability (a lost block is deterministically
  recomputable, and survivors' cached copies stay byte-valid);
* :mod:`repro.recovery.checkpoint` — iteration-boundary solver-state
  checkpoints: checksummed block payloads under an atomic
  temp-file → fsync → rename manifest, with latest-good fallback.
"""

from repro.recovery.checkpoint import (
    Checkpoint,
    CheckpointManager,
    restore_rng,
    rng_state,
)
from repro.recovery.lineage import (
    LineageLog,
    ReconstructionPlan,
    plan_reconstruction,
)
from repro.recovery.membership import (
    ALIVE,
    DEAD,
    SUSPECT,
    MembershipConfig,
    MembershipTracker,
)

__all__ = [
    "ALIVE",
    "SUSPECT",
    "DEAD",
    "MembershipConfig",
    "MembershipTracker",
    "LineageLog",
    "ReconstructionPlan",
    "plan_reconstruction",
    "Checkpoint",
    "CheckpointManager",
    "rng_state",
    "restore_rng",
]
