"""Out-of-core conjugate gradients for symmetric positive-definite systems.

One out-of-core SpMV per iteration; the dot products and vector updates —
like Lanczos' orthonormalization, "a smaller extent" of the cost — run in
core.

Pass ``checkpoint_dir`` to persist the full recurrence state ``(x, r, p,
rr, history)`` every ``checkpoint_every`` iterations via
:mod:`repro.recovery.checkpoint`; ``resume=True`` restarts from the newest
intact checkpoint.  All state — including the scalar ``rr`` — is stored as
raw float64 payloads, so a resumed solve continues the iterate sequence
bit-identically.
"""

from __future__ import annotations

from dataclasses import dataclass
from collections.abc import Callable
from pathlib import Path
from typing import Protocol

import numpy as np


class _Operator(Protocol):  # pragma: no cover - typing aid
    n: int

    def matvec(self, x: np.ndarray) -> np.ndarray: ...


@dataclass
class CGResult:
    x: np.ndarray
    iterations: int
    residual_norm: float
    converged: bool
    residual_history: list[float]


def conjugate_gradient_solve(
    operator: _Operator,
    b: np.ndarray,
    *,
    x0: np.ndarray | None = None,
    tol: float = 1e-10,
    max_iterations: int | None = None,
    callback: Callable[[int, float], None] | None = None,
    checkpoint_dir: str | Path | None = None,
    checkpoint_every: int = 10,
    resume: bool = False,
) -> CGResult:
    """Solve A x = b (A symmetric positive definite) by CG."""
    n = operator.n
    b = np.asarray(b, dtype=np.float64)
    if b.shape != (n,):
        raise ValueError(f"b has shape {b.shape}, want ({n},)")
    if max_iterations is None:
        max_iterations = 2 * n
    if max_iterations < 1:
        raise ValueError("max_iterations must be >= 1")
    if checkpoint_every < 1:
        raise ValueError("checkpoint_every must be >= 1")
    x = np.zeros(n) if x0 is None else np.asarray(x0, dtype=np.float64).copy()
    if x.shape != (n,):
        raise ValueError(f"x0 has shape {x.shape}, want ({n},)")
    b_norm = float(np.linalg.norm(b)) or 1.0
    start = 0
    mgr = None
    ckpt = None
    if checkpoint_dir is not None:
        from repro.recovery.checkpoint import CheckpointManager
        mgr = CheckpointManager(checkpoint_dir)
        if resume:
            ckpt = mgr.load_latest()
    if ckpt is not None:
        x = ckpt.arrays["x"].copy()
        r = ckpt.arrays["r"].copy()
        p = ckpt.arrays["p"].copy()
        rr = float(ckpt.arrays["rr"][0])
        history = [float(h) for h in ckpt.arrays["history"]]
        start = ckpt.step
    else:
        r = b - operator.matvec(x)
        p = r.copy()
        rr = float(r @ r)
        history = [float(np.sqrt(rr))]
    it = start
    for it in range(start + 1, max_iterations + 1):
        ap = operator.matvec(p)
        pap = float(p @ ap)
        if pap <= 0:
            raise ValueError(
                "operator is not positive definite (p^T A p <= 0)"
            )
        alpha = rr / pap
        x += alpha * p
        r -= alpha * ap
        rr_new = float(r @ r)
        res_norm = float(np.sqrt(rr_new))
        history.append(res_norm)
        if callback is not None:
            callback(it, res_norm)
        if res_norm <= tol * b_norm:
            return CGResult(x=x, iterations=it, residual_norm=res_norm,
                            converged=True, residual_history=history)
        p = r + (rr_new / rr) * p
        rr = rr_new
        if mgr is not None and it % checkpoint_every == 0:
            mgr.save(it, {"x": x, "r": r, "p": p, "rr": np.array([rr]),
                          "history": np.asarray(history)},
                     {"iteration": it})
    return CGResult(x=x, iterations=it, residual_norm=history[-1],
                    converged=False, residual_history=history)
