"""Out-of-core iterative linear solvers on the DOoC operator.

The paper's introduction cites distributed out-of-core Jacobi and
conjugate-gradient solvers (Knottenbelt & Harrison's Markov-chain work)
as the lineage of the approach, and its conclusion promises "more linear
algebra kernels".  These solvers run their SpMVs through
:class:`repro.spmv.ooc_operator.OutOfCoreMatrix` while the scalar
recurrences stay in core — the same split as the out-of-core Lanczos.
"""

from repro.solvers.jacobi import JacobiResult, jacobi_solve
from repro.solvers.cg import CGResult, conjugate_gradient_solve

__all__ = ["jacobi_solve", "JacobiResult",
           "conjugate_gradient_solve", "CGResult"]
