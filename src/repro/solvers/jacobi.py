"""Out-of-core Jacobi iteration: x <- x + D^{-1} (b - A x).

Converges for strictly diagonally dominant (or otherwise contractive)
systems; each sweep costs one out-of-core SpMV plus in-core vector
updates.

Three execution modes (docs/ITERATION.md):

* ``mode="sync"`` — the classic bulk-synchronous sweep.  Every sweep
  multiplies every sub-matrix; the result is bit-identical to the in-core
  blocked reference.
* ``mode="incremental"`` — delta/workset sweeps: a per-block
  :class:`~repro.core.convergence.ConvergenceTracker` freezes columns
  whose iterate went bitwise stationary, and later sweeps seed their
  cached products instead of re-reading and re-multiplying the frozen
  sub-matrices.  Because re-multiplying an unchanged block is
  deterministic, the iterate sequence — and the final answer — stays
  bit-identical to ``"sync"`` while tasks and disk bytes fall.
  Requires a workset-capable operator (:class:`repro.spmv.ooc_operator.
  OutOfCoreMatrix`).
* ``mode="async"`` — chaotic relaxation (Chazan-Miranker): the global
  barrier is relaxed and each block multiply may read a *stale* iterate
  version, at most ``staleness`` rounds old, drawn from a seeded
  generator.  Still converges for diagonally dominant systems under
  bounded staleness; before declaring convergence the driver runs one
  fresh confirmation sweep, so the reported residual is a true residual
  and the documented bound ``||b - A x|| <= tol * ||b||`` holds.
  ``staleness=0`` degenerates to the synchronous iterate sequence.

Every mode terminates early when the iterate reaches an exact (bitwise)
fixpoint: a deterministic sweep that reproduced ``x`` exactly can never
produce anything else, so further sweeps are pure waste.  Sync and
incremental sweeps additionally detect exact *period-2 limit cycles*
(``x(t) == x(t-2)`` bitwise) — near convergence the update often
oscillates in the last ulp forever rather than landing on a period-1
fixpoint — and exit then too, with ``fixpoint=True``; both modes use the
identical check, so their iterate sequences never diverge.

Pass ``checkpoint_dir`` to persist the iterate at iteration boundaries
(every ``checkpoint_every`` sweeps, via :mod:`repro.recovery.checkpoint`);
``resume=True`` restarts from the newest intact checkpoint.  Sync and
incremental resumes reproduce the remaining iterates bit-identically —
the solver state is exactly ``(x, history)`` and both round-trip as raw
float64 payloads (an incremental resume re-discovers its frozen columns
after one warm-up sweep).  An async resume restarts the staleness history
and the stale-choice stream from the checkpointed iterate; it keeps the
convergence bound, not any particular iterate sequence.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from collections.abc import Callable
from pathlib import Path
from typing import Protocol

import numpy as np

from repro.core.convergence import ConvergenceReport, ConvergenceTracker

MODES = ("sync", "incremental", "async")


class _Operator(Protocol):  # pragma: no cover - typing aid
    n: int

    def matvec(self, x: np.ndarray) -> np.ndarray: ...
    def diagonal(self) -> np.ndarray: ...


@dataclass
class JacobiResult:
    x: np.ndarray
    iterations: int
    residual_norm: float
    converged: bool
    residual_history: list[float]
    mode: str = "sync"
    #: the iterate went bitwise stationary and the drive exited early
    fixpoint: bool = False
    #: per-sweep workset history (incremental and async modes)
    convergence: ConvergenceReport | None = None


@dataclass
class _Checkpointing:
    """Shared checkpoint plumbing for all three modes."""

    mgr: object | None = None
    every: int = 10
    history: list[float] = field(default_factory=list)

    @classmethod
    def open(cls, checkpoint_dir, every, resume):
        self = cls(every=every)
        x = history = start = None
        if checkpoint_dir is not None:
            from repro.recovery.checkpoint import CheckpointManager
            self.mgr = CheckpointManager(checkpoint_dir)
            if resume:
                ckpt = self.mgr.load_latest()
                if ckpt is not None:
                    x = ckpt.arrays["x"].copy()
                    history = [float(h) for h in ckpt.arrays["history"]]
                    start = ckpt.step
        return self, x, history, start

    def save(self, it, x, history):
        if self.mgr is not None and it % self.every == 0:
            self.mgr.save(it, {"x": x, "history": np.asarray(history)},
                          {"iteration": it})


def jacobi_solve(
    operator: _Operator,
    b: np.ndarray,
    *,
    x0: np.ndarray | None = None,
    tol: float = 1e-8,
    max_iterations: int = 200,
    callback: Callable[[int, float], None] | None = None,
    checkpoint_dir: str | Path | None = None,
    checkpoint_every: int = 10,
    resume: bool = False,
    mode: str = "sync",
    staleness: int = 2,
    seed: int = 0,
    fixpoint_exit: bool = True,
) -> JacobiResult:
    """Solve A x = b by Jacobi sweeps with out-of-core SpMVs."""
    if mode not in MODES:
        raise ValueError(f"unknown mode {mode!r}: have {MODES}")
    n = operator.n
    b = np.asarray(b, dtype=np.float64)
    if b.shape != (n,):
        raise ValueError(f"b has shape {b.shape}, want ({n},)")
    if max_iterations < 1:
        raise ValueError("max_iterations must be >= 1")
    if checkpoint_every < 1:
        raise ValueError("checkpoint_every must be >= 1")
    if staleness < 0:
        raise ValueError("staleness must be >= 0")
    diag = operator.diagonal()
    if np.any(diag == 0):
        raise ValueError("Jacobi needs a zero-free diagonal")
    x = np.zeros(n) if x0 is None else np.asarray(x0, dtype=np.float64).copy()
    if x.shape != (n,):
        raise ValueError(f"x0 has shape {x.shape}, want ({n},)")
    b_norm = float(np.linalg.norm(b)) or 1.0
    ckpt, ck_x, ck_hist, ck_start = _Checkpointing.open(
        checkpoint_dir, checkpoint_every, resume)
    history: list[float] = ck_hist or []
    start = ck_start or 0
    if ck_x is not None:
        x = ck_x
    if mode == "incremental":
        return _solve_incremental(operator, b, x, diag, b_norm, tol,
                                  max_iterations, callback, ckpt, history,
                                  start, fixpoint_exit)
    if mode == "async":
        return _solve_async(operator, b, x, diag, b_norm, tol,
                            max_iterations, callback, ckpt, history, start,
                            staleness, seed, fixpoint_exit)
    res_norm = history[-1] if history else np.inf
    it = start
    x_two_ago = None
    for it in range(start + 1, max_iterations + 1):
        residual = b - operator.matvec(x)
        res_norm = float(np.linalg.norm(residual))
        history.append(res_norm)
        if callback is not None:
            callback(it, res_norm)
        if res_norm <= tol * b_norm:
            return JacobiResult(x=x, iterations=it, residual_norm=res_norm,
                                converged=True, residual_history=history)
        x_new = x + residual / diag
        if fixpoint_exit and _stagnant(x_new, x, x_two_ago):
            # A deterministic sweep that reproduced x (or entered an exact
            # 2-cycle) will repeat forever: the residual cannot improve.
            return JacobiResult(x=x, iterations=it, residual_norm=res_norm,
                                converged=False, residual_history=history,
                                fixpoint=True)
        x_two_ago = x
        x = x_new
        ckpt.save(it, x, history)
    return JacobiResult(x=x, iterations=it, residual_norm=res_norm,
                        converged=False, residual_history=history)


def _stagnant(x_new, x, x_two_ago) -> bool:
    """Exact period-1 fixpoint or period-2 limit cycle of the sweep."""
    return bool(np.array_equal(x_new, x)
                or (x_two_ago is not None and np.array_equal(x_new, x_two_ago)))


def _require_workset_operator(operator, mode: str):
    partition = getattr(operator, "partition", None)
    if partition is None or not hasattr(operator, "column_products"):
        raise ValueError(
            f"mode={mode!r} needs a workset-capable operator "
            "(repro.spmv.ooc_operator.OutOfCoreMatrix); got "
            f"{type(operator).__name__}")
    return partition


def _solve_incremental(operator, b, x, diag, b_norm, tol, max_iterations,
                       callback, ckpt, history, start, fixpoint_exit):
    """Delta/workset sweeps: bit-identical to sync, minus the dead work."""
    from repro.spmv.ooc_operator import SweepWorkset

    partition = _require_workset_operator(operator, "incremental")
    tracer = getattr(getattr(operator, "engine", None), "tracer", None)
    workset = SweepWorkset(operator)
    tracker = ConvergenceTracker(partition.k, tol=0.0, tracer=tracer)
    pending_aux = 0
    res_norm = history[-1] if history else np.inf
    it = start
    x_two_ago = None

    def result(converged, fixpoint=False):
        return JacobiResult(x=x, iterations=it, residual_norm=res_norm,
                            converged=converged, residual_history=history,
                            mode="incremental", fixpoint=fixpoint,
                            convergence=tracker.report)

    for it in range(start + 1, max_iterations + 1):
        residual = b - operator.matvec(x, workset=workset)
        sweep_tasks = operator.last_sweep["tasks"]
        res_norm = float(np.linalg.norm(residual))
        history.append(res_norm)
        if callback is not None:
            callback(it, res_norm)
        if res_norm <= tol * b_norm:
            return result(converged=True)
        x_new = x + residual / diag
        record = tracker.observe(
            partition.split_vector(x), partition.split_vector(x_new),
            tasks_scheduled=sweep_tasks, aux_tasks=pending_aux)
        pending_aux = 0
        for v in record.reentered:
            workset.thaw(v)
        if fixpoint_exit and _stagnant(x_new, x, x_two_ago):
            # Same exit condition as mode="sync", so the two iterate
            # sequences (and iteration counts) stay bitwise identical.
            return result(converged=False, fixpoint=True)
        x_two_ago = x
        x = x_new
        new_parts = partition.split_vector(x_new)
        for v in record.newly_frozen:
            # Cache every frozen phase (period-2 cycles have two).
            for phase in tracker.phases(v) or (new_parts[v],):
                pending_aux += workset.freeze(v, phase)
        ckpt.save(it, x, history)
    return result(converged=False)


def _solve_async(operator, b, x, diag, b_norm, tol, max_iterations,
                 callback, ckpt, history, start, staleness, seed,
                 fixpoint_exit):
    """Bounded-staleness chaotic relaxation with a confirmation sweep."""
    partition = _require_workset_operator(operator, "async")
    tracer = getattr(getattr(operator, "engine", None), "tracer", None)
    k = partition.k
    tracker = ConvergenceTracker(k, tol=0.0, tracer=tracer)
    rng = np.random.default_rng(seed)
    coords = [(u, v) for u in range(k) for v in range(k)]
    #: iterate versions, newest first; versions[age] is ``age`` rounds old
    versions = [partition.split_vector(x)]
    res_norm = history[-1] if history else np.inf
    it = start

    def result(converged, fixpoint=False):
        return JacobiResult(x=x, iterations=it, residual_norm=res_norm,
                            converged=converged, residual_history=history,
                            mode="async", fixpoint=fixpoint,
                            convergence=tracker.report)

    for it in range(start + 1, max_iterations + 1):
        max_age = min(staleness, len(versions) - 1)
        choice = {uv: int(rng.integers(0, max_age + 1)) for uv in coords}
        y_parts = operator.stale_sweep(versions, choice)
        sweep_tasks = operator.last_sweep["tasks"]
        residual = b - partition.join_vector(y_parts)
        res_norm = float(np.linalg.norm(residual))
        history.append(res_norm)
        if callback is not None:
            callback(it, res_norm)
        if res_norm <= tol * b_norm:
            # The relaxed residual mixed iterate versions; confirm against
            # a fresh synchronous sweep so the reported residual is a true
            # residual of the returned x (the documented bound).
            true_res = float(np.linalg.norm(b - operator.matvec(x)))
            res_norm = true_res
            history[-1] = true_res
            if true_res <= tol * b_norm:
                return result(converged=True)
        x_new = x + residual / diag
        tracker.observe(versions[0], partition.split_vector(x_new),
                        tasks_scheduled=sweep_tasks)
        if fixpoint_exit and np.array_equal(x_new, x):
            return result(converged=res_norm <= tol * b_norm, fixpoint=True)
        x = x_new
        versions.insert(0, partition.split_vector(x))
        del versions[staleness + 1:]
        ckpt.save(it, x, history)
    return result(converged=False)
