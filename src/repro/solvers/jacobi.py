"""Out-of-core Jacobi iteration: x <- x + D^{-1} (b - A x).

Converges for strictly diagonally dominant (or otherwise contractive)
systems; each sweep costs one out-of-core SpMV plus in-core vector
updates.

Pass ``checkpoint_dir`` to persist the iterate at iteration boundaries
(every ``checkpoint_every`` sweeps, via :mod:`repro.recovery.checkpoint`);
``resume=True`` restarts from the newest intact checkpoint and reproduces
the remaining iterates bit-identically — the solver state is exactly
``(x, history)`` and both round-trip as raw float64 payloads.
"""

from __future__ import annotations

from dataclasses import dataclass
from collections.abc import Callable
from pathlib import Path
from typing import Protocol

import numpy as np


class _Operator(Protocol):  # pragma: no cover - typing aid
    n: int

    def matvec(self, x: np.ndarray) -> np.ndarray: ...
    def diagonal(self) -> np.ndarray: ...


@dataclass
class JacobiResult:
    x: np.ndarray
    iterations: int
    residual_norm: float
    converged: bool
    residual_history: list[float]


def jacobi_solve(
    operator: _Operator,
    b: np.ndarray,
    *,
    x0: np.ndarray | None = None,
    tol: float = 1e-8,
    max_iterations: int = 200,
    callback: Callable[[int, float], None] | None = None,
    checkpoint_dir: str | Path | None = None,
    checkpoint_every: int = 10,
    resume: bool = False,
) -> JacobiResult:
    """Solve A x = b by Jacobi sweeps with out-of-core SpMVs."""
    n = operator.n
    b = np.asarray(b, dtype=np.float64)
    if b.shape != (n,):
        raise ValueError(f"b has shape {b.shape}, want ({n},)")
    if max_iterations < 1:
        raise ValueError("max_iterations must be >= 1")
    if checkpoint_every < 1:
        raise ValueError("checkpoint_every must be >= 1")
    diag = operator.diagonal()
    if np.any(diag == 0):
        raise ValueError("Jacobi needs a zero-free diagonal")
    x = np.zeros(n) if x0 is None else np.asarray(x0, dtype=np.float64).copy()
    if x.shape != (n,):
        raise ValueError(f"x0 has shape {x.shape}, want ({n},)")
    b_norm = float(np.linalg.norm(b)) or 1.0
    history: list[float] = []
    start = 0
    mgr = None
    if checkpoint_dir is not None:
        from repro.recovery.checkpoint import CheckpointManager
        mgr = CheckpointManager(checkpoint_dir)
        if resume:
            ckpt = mgr.load_latest()
            if ckpt is not None:
                x = ckpt.arrays["x"].copy()
                history = [float(h) for h in ckpt.arrays["history"]]
                start = ckpt.step
    res_norm = history[-1] if history else np.inf
    it = start
    for it in range(start + 1, max_iterations + 1):
        residual = b - operator.matvec(x)
        res_norm = float(np.linalg.norm(residual))
        history.append(res_norm)
        if callback is not None:
            callback(it, res_norm)
        if res_norm <= tol * b_norm:
            return JacobiResult(x=x, iterations=it, residual_norm=res_norm,
                                converged=True, residual_history=history)
        x = x + residual / diag
        if mgr is not None and it % checkpoint_every == 0:
            mgr.save(it, {"x": x, "history": np.asarray(history)},
                     {"iteration": it})
    return JacobiResult(x=x, iterations=it, residual_norm=res_norm,
                        converged=False, residual_history=history)
