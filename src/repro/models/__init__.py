"""Calibrated analytic performance models.

* :mod:`repro.models.mfdn_hopper` — in-core MFDn on Hopper (Table II): a
  compute term from published machine/matrix parameters and a two-constant
  communication term calibrated on the published rows (clearly labelled a
  model, per DESIGN.md §5);
* :mod:`repro.models.testbed` — the SSD-testbed workload constants of
  Section V, the optimal-I/O lower bound used as Fig. 6's denominator, and
  the memory-hierarchy data behind Fig. 1.
"""

from repro.models.mfdn_hopper import HopperModelParams, MFDnHopperModel
from repro.models.testbed import (
    MEMORY_HIERARCHY,
    TestbedWorkload,
    optimal_io_seconds,
)

__all__ = [
    "MFDnHopperModel",
    "HopperModelParams",
    "TestbedWorkload",
    "optimal_io_seconds",
    "MEMORY_HIERARCHY",
]
