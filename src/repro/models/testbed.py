"""SSD-testbed workload constants, the optimal-I/O bound, and Fig. 1 data.

Section V fixes the per-node workload: "each compute node is responsible
for a block of the matrix with 50 million rows and columns which contains
about 12.8 billion non-zero elements in total.  Each block ... is further
decomposed into 25 sub-matrices ... about 4 GBs" in binary CSR.  Runs do
4 SpMV iterations on a perfect-square number of nodes.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from repro.util.units import GB, KiB, MiB, GiB, TB


@dataclass(frozen=True)
class TestbedWorkload:
    """The per-node workload of Tables III/IV."""

    __test__ = False  # not a pytest class despite the name

    rows_per_node: int = 50 * 10**6
    nnz_per_node: float = 12.8e9
    submatrices_per_node: int = 25   # a 5 x 5 arrangement
    iterations: int = 4
    #: stored bytes per nonzero: 4-byte value + 4-byte column index, the
    #: layout that makes 12.8e9 nnz come to the paper's ~0.10 TB per node
    #: and ~4 GB per sub-matrix file
    bytes_per_nnz: int = 8

    def __post_init__(self) -> None:
        side = int(round(math.sqrt(self.submatrices_per_node)))
        if side * side != self.submatrices_per_node:
            raise ValueError("submatrices_per_node must be a perfect square")

    @property
    def local_grid_side(self) -> int:
        return int(round(math.sqrt(self.submatrices_per_node)))

    @property
    def bytes_per_node(self) -> float:
        """Matrix bytes stored per node (~0.10 TB: Table III row 1).

        Row pointers are negligible at ~256 nnz per row.
        """
        return self.nnz_per_node * self.bytes_per_nnz

    @property
    def submatrix_bytes(self) -> float:
        """~4 GB per sub-matrix file."""
        return self.bytes_per_node / self.submatrices_per_node

    @property
    def subvector_rows(self) -> int:
        """Rows of one sub-vector (a node row-block split 5 ways)."""
        return self.rows_per_node // self.local_grid_side

    @property
    def subvector_bytes(self) -> float:
        return self.subvector_rows * 8.0

    @property
    def checkpoint_bytes(self) -> float:
        """One node's slice of the iterate — the per-node payload of an
        iteration-boundary checkpoint (the matrix is read-only and needs
        no checkpointing; only the evolving vector does)."""
        return self.rows_per_node * 8.0

    def matrix_dimension(self, nodes: int) -> int:
        """Global matrix dimension: nodes tile a 2-D block decomposition,
        so D grows with sqrt(nodes) (Table III: 50M at 1 node, 300M at 36)
        while nnz grows with the node count (area)."""
        side = int(round(math.sqrt(nodes)))
        if side * side != nodes:
            raise ValueError(f"{nodes} is not a perfect square")
        return self.rows_per_node * side

    def total_nnz(self, nodes: int) -> float:
        return self.nnz_per_node * nodes

    def total_bytes(self, nodes: int) -> float:
        return self.bytes_per_node * nodes

    def flops(self, nodes: int) -> float:
        """Total flops of the full run (2 per nonzero per iteration)."""
        return 2.0 * self.total_nnz(nodes) * self.iterations

    def grid_k(self, nodes: int) -> int:
        """Global grid side: 5 * sqrt(nodes)."""
        side = int(round(math.sqrt(nodes)))
        if side * side != nodes:
            raise ValueError(f"{nodes} is not a perfect square")
        return side * self.local_grid_side


def reconstruction_penalty_seconds(
    workload: TestbedWorkload,
    *,
    detection_s: float = 1.2,
    peak_bytes_per_s: float = 20 * GB,
) -> float:
    """Lower bound on a buddy takeover after a permanent node loss.

    The failure detector's declaration window (the engine's
    ``dead_after_s``) plus one full re-read of the dead node's sub-matrix
    working set at peak shared-filesystem bandwidth — the analytic
    counterpart of the DES testbed's takeover path.
    """
    if detection_s < 0 or peak_bytes_per_s <= 0:
        raise ValueError("bad reconstruction-penalty parameters")
    return detection_s + workload.bytes_per_node / peak_bytes_per_s


def optimal_io_seconds(total_bytes: float, iterations: int,
                       peak_bytes_per_s: float = 20 * GB) -> float:
    """Fig. 6's denominator: "minimum time required to acquire the data
    assuming peak 20GB/s is sustained" — every iteration re-reads the
    matrix once."""
    if total_bytes < 0 or iterations < 1 or peak_bytes_per_s <= 0:
        raise ValueError("bad optimal-I/O parameters")
    return total_bytes * iterations / peak_bytes_per_s


@dataclass(frozen=True)
class CodecBandwidthModel:
    """Analytic cost of reading compressed sub-matrices off disk.

    A logical read of ``L`` bytes under a codec with compression ratio
    ``r`` (logical / physical) moves only ``L / r`` bytes through the
    filesystem, then pays ``L / decode_bytes_per_s`` of CPU to inflate —
    the effective bandwidth a solver experiences is the harmonic
    composition::

        effective_bw = 1 / (1 / (r * disk_bw) + 1 / decode_bw)

    so compression wins exactly when the disk is slower than
    ``(r - 1) x`` the decoder — the spinning-disk / GPFS regime the
    paper targets — and loses on storage fast enough to outrun the
    decode (NVMe vs single-thread DEFLATE).
    """

    name: str = "raw"
    #: logical bytes per physical byte on disk (>= keeps time finite)
    ratio: float = 1.0
    #: single-stream decode throughput; 0 means decode is free (raw)
    decode_bytes_per_s: float = 0.0

    def __post_init__(self) -> None:
        if self.ratio <= 0:
            raise ValueError("compression ratio must be positive")
        if self.decode_bytes_per_s < 0:
            raise ValueError("decode bandwidth must be non-negative")

    def physical_bytes(self, logical_bytes: float) -> float:
        return logical_bytes / self.ratio

    def decode_seconds(self, logical_bytes: float) -> float:
        if self.decode_bytes_per_s <= 0:
            return 0.0
        return logical_bytes / self.decode_bytes_per_s

    def effective_read_bandwidth(self, disk_bytes_per_s: float) -> float:
        """Logical bytes per second through read + decode, in steady state."""
        if disk_bytes_per_s <= 0:
            raise ValueError("disk bandwidth must be positive")
        t = 1.0 / (self.ratio * disk_bytes_per_s)
        if self.decode_bytes_per_s > 0:
            t += 1.0 / self.decode_bytes_per_s
        return 1.0 / t


#: pinned model parameters per registered codec: DEFLATE-6 squeezes CSR
#: sub-matrices harder but decodes around ~0.3 GB/s on one stream;
#: shuffle+DEFLATE-1 trades a little ratio for a much cheaper decode.
CODEC_MODELS: dict[str, CodecBandwidthModel] = {
    "raw": CodecBandwidthModel(),
    "zlib": CodecBandwidthModel("zlib", ratio=2.5,
                                decode_bytes_per_s=0.3 * GB),
    "shuffle-zlib": CodecBandwidthModel("shuffle-zlib", ratio=2.2,
                                        decode_bytes_per_s=0.9 * GB),
}


@dataclass(frozen=True)
class WorksetModel:
    """Analytic per-column dropout schedule for incremental sweeps.

    The DES testbed's counterpart of the engine's ``ConvergenceTracker``:
    instead of observing real iterates, each grid column ``j`` is assigned
    a geometric update-decay rate ``rhos[j % len(rhos)]`` (update norm
    after sweep ``s`` is ``rho**(s+1)`` from a unit start) and leaves the
    workset once its update drops to ``tol``.  ``rho == 1.0`` models a
    column that never converges.  Sweeps are 0-based, matching the
    testbed's iteration counter.
    """

    rhos: tuple[float, ...] = (0.2, 0.5, 0.8)
    tol: float = 1e-6

    def __post_init__(self) -> None:
        if not self.rhos:
            raise ValueError("need at least one decay rate")
        if any(not (0.0 < r <= 1.0) for r in self.rhos):
            raise ValueError("decay rates must be in (0, 1]")
        if not (0.0 < self.tol < 1.0):
            raise ValueError("tol must be in (0, 1)")

    def column_rho(self, j: int) -> float:
        return self.rhos[j % len(self.rhos)]

    def freeze_sweep(self, j: int) -> int | None:
        """First 0-based sweep whose *start* finds column ``j`` frozen
        (``None`` if it never converges)."""
        rho = self.column_rho(j)
        if rho >= 1.0:
            return None
        # smallest s with rho**s <= tol: the column's last active sweep
        # is s-1, so it is frozen from sweep s on.
        return max(1, math.ceil(math.log(self.tol) / math.log(rho)))

    def active_columns(self, sweep: int, ncols: int) -> list[int]:
        """Columns still in the workset at the start of ``sweep``."""
        if sweep < 0:
            raise ValueError("sweep must be >= 0")
        out = []
        for j in range(ncols):
            fs = self.freeze_sweep(j)
            if fs is None or sweep < fs:
                out.append(j)
        return out

    def active_fraction(self, sweep: int, ncols: int) -> float:
        if ncols < 1:
            raise ValueError("ncols must be >= 1")
        return len(self.active_columns(sweep, ncols)) / ncols

    def fixpoint_sweep(self, ncols: int) -> int | None:
        """First sweep with an empty workset (``None`` if never)."""
        worst = 0
        for j in range(ncols):
            fs = self.freeze_sweep(j)
            if fs is None:
                return None
            worst = max(worst, fs)
        return worst


@dataclass(frozen=True)
class MemoryLayer:
    """One layer of Fig. 1's memory hierarchy."""

    name: str
    capacity_bytes: float
    latency_cycles: float
    bandwidth_bytes_per_s: float


#: Fig. 1: capacities and access latencies across the hierarchy, with the
#: "latency gap" between DRAM (~100 cycles) and disk (~10,000+ cycles).
MEMORY_HIERARCHY: tuple[MemoryLayer, ...] = (
    MemoryLayer("registers", 1 * KiB, 1, 1e12),
    MemoryLayer("cache", 8 * MiB, 10, 400e9),
    MemoryLayer("dram", 24 * GiB, 100, 30e9),
    MemoryLayer("ssd", 800 * GB, 3_000, 2e9),
    MemoryLayer("hdd", 2 * TB, 10_000, 0.15e9),
)
