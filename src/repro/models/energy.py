"""Energy-efficiency analysis (Section VI-B, implemented as an extension).

The paper argues that SSD-equipped clusters could cut energy as well as
CPU-hours: fewer powered nodes, non-volatile storage needing no refresh —
but notes that the testbed's separated I/O nodes "must be powered up" at
all times and that shipping every byte across InfiniBand is costly.  It
proposes the comparison as future work; this module carries it out with a
transparent wall-power model.

Power numbers are catalog-level estimates for the 2011-era hardware and
are deliberately round; the *comparison* (which architecture burns less
energy per iteration) is robust to tens of watts either way:

* Carver compute node — 2x Xeon X5550 (95 W TDP each) + 24 GB DDR3 +
  board/NIC: ~280 W under load;
* Virident tachIOn card: ~25 W active;
* Carver I/O node: compute-node base + 2 cards: ~330 W;
* Hopper XE6 node — 2x 12-core Magny-Cours + 32 GB + Gemini: ~350 W.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.ci.cases import Table1Case
from repro.models.mfdn_hopper import MFDnHopperModel
from repro.testbed.app import TestbedRow


@dataclass(frozen=True)
class PowerModel:
    """Wall power per node type, in watts."""

    compute_node_w: float = 280.0
    ssd_card_w: float = 25.0
    io_node_w: float = 330.0   # compute base + 2 cards
    io_nodes: int = 10
    hopper_node_w: float = 350.0
    hopper_cores_per_node: int = 24

    def __post_init__(self) -> None:
        if min(self.compute_node_w, self.ssd_card_w, self.io_node_w,
               self.hopper_node_w) <= 0:
            raise ValueError("power figures must be positive")


@dataclass(frozen=True)
class EnergyPerIteration:
    """kWh burned by one SpMV/Lanczos iteration."""

    label: str
    kwh: float
    powered_watts: float
    seconds: float


def testbed_energy(row: TestbedRow, *, power: PowerModel = PowerModel(),
                   colocated: bool = False) -> EnergyPerIteration:
    """Energy of one iteration of a testbed run.

    The separated design keeps all ten I/O nodes powered regardless of how
    few compute nodes participate; the colocated design (Section VI-A)
    powers only the compute nodes, each carrying its two cards.
    """
    t_iter = row.time_s / 4.0  # the sweeps run 4 iterations
    if colocated:
        watts = row.nodes * (power.compute_node_w + 2 * power.ssd_card_w)
        label = f"{row.nodes}-node colocated SSD"
    else:
        watts = row.nodes * power.compute_node_w + power.io_nodes * power.io_node_w
        label = f"{row.nodes}-node testbed (+{power.io_nodes} I/O nodes)"
    return EnergyPerIteration(
        label=label,
        kwh=watts * t_iter / 3.6e6,
        powered_watts=watts,
        seconds=t_iter,
    )


def hopper_energy(case: Table1Case, *, power: PowerModel = PowerModel(),
                  model: MFDnHopperModel | None = None) -> EnergyPerIteration:
    """Energy of one modelled MFDn iteration on Hopper."""
    model = model or MFDnHopperModel()
    it = model.iteration(
        case.published_dimension, case.published_nnz,
        case.published_processors, case.diag_processors,
    )
    nodes = -(-case.published_processors // power.hopper_cores_per_node)
    watts = nodes * power.hopper_node_w
    return EnergyPerIteration(
        label=f"Hopper {case.name} ({nodes} nodes)",
        kwh=watts * it.total_seconds / 3.6e6,
        powered_watts=watts,
        seconds=it.total_seconds,
    )
