"""Performance model of in-core MFDn Lanczos iterations on Hopper.

Table II is the paper's baseline: total time of 99 Lanczos iterations, the
fraction spent communicating, and the CPU-hour cost per iteration, for the
four ¹⁰B problem sizes of Table I.  We regenerate those numbers from a
two-part model:

* **compute**: ``t_comp = 2 nnz / (np * rate(np))`` with an effective
  per-core SpMV rate that decays slowly with scale (load imbalance and
  orthogonalization overhead folded in):
  ``rate(np) = rate_0 * (np / np_0) ** -epsilon``.  ``rate_0 = 125 Mflop/s``
  and ``epsilon = 0.166`` come from the first and last published rows.
* **communication**: MFDn's 2-D triangular decomposition exchanges the
  distributed Lanczos vector along processor rows and columns each
  iteration; each of the ``n`` diagonal processors holds ``4 D / n`` bytes
  and talks to ``O(n)`` partners, giving
  ``t_comm = v_local * (a * n + b)`` with (a, b) least-squares calibrated
  on the four published rows (a ~ per-partner bandwidth cost, b ~ fan-in
  constant).

The compute term tracks the published rows to within ~8% and the
communication term to within ~31% (the published fractions themselves are
rounded to two digits); the *shape* — communication swallowing the runtime
as np grows, 34% -> 86% — is what Fig. 7's comparison consumes.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.ci.cases import Table1Case


@dataclass(frozen=True)
class HopperModelParams:
    """Calibration constants (see module docstring for provenance)."""

    rate0_flops: float = 125e6     # per-core effective SpMV rate at np0
    np0: int = 276                 # reference processor count
    epsilon: float = 0.166         # rate decay exponent with scale
    comm_a: float = 2.92           # s per (GB x diagonal-partner)
    comm_b: float = 28.7           # s per GB (fan-in constant)

    def __post_init__(self) -> None:
        if min(self.rate0_flops, self.np0, self.comm_a, self.comm_b) <= 0:
            raise ValueError("model constants must be positive")
        if not 0 <= self.epsilon < 1:
            raise ValueError("epsilon must be in [0, 1)")


@dataclass(frozen=True)
class IterationBreakdown:
    """Modelled single Lanczos iteration on Hopper."""

    processors: int
    compute_seconds: float
    comm_seconds: float

    @property
    def total_seconds(self) -> float:
        return self.compute_seconds + self.comm_seconds

    @property
    def comm_fraction(self) -> float:
        return self.comm_seconds / self.total_seconds

    @property
    def cpu_hours(self) -> float:
        """CPU-hour cost of one iteration: cores x seconds / 3600."""
        return self.processors * self.total_seconds / 3600.0


class MFDnHopperModel:
    """Regenerates Table II rows (and Fig. 7's Hopper series)."""

    def __init__(self, params: HopperModelParams = HopperModelParams()):
        self.params = params

    def effective_rate(self, processors: int) -> float:
        """Per-core SpMV flop rate at a given scale."""
        if processors < 1:
            raise ValueError("processors must be >= 1")
        p = self.params
        return p.rate0_flops * (processors / p.np0) ** (-p.epsilon)

    def iteration(self, dimension: int, nnz: float, processors: int,
                  diag_processors: int) -> IterationBreakdown:
        """Model one Lanczos iteration."""
        if diag_processors < 1:
            raise ValueError("diag_processors must be >= 1")
        p = self.params
        t_comp = 2.0 * nnz / (processors * self.effective_rate(processors))
        v_local_gb = 4.0 * dimension / diag_processors / 1e9
        t_comm = v_local_gb * (p.comm_a * diag_processors + p.comm_b)
        return IterationBreakdown(
            processors=processors,
            compute_seconds=t_comp,
            comm_seconds=t_comm,
        )

    def table2_row(self, case: Table1Case, *, iterations: int = 99) -> dict:
        """The modelled Table II row for one Table I case."""
        it = self.iteration(
            case.published_dimension,
            case.published_nnz,
            case.published_processors,
            case.diag_processors,
        )
        return {
            "name": case.name,
            "processors": case.published_processors,
            "t_total_s": it.total_seconds * iterations,
            "comm_fraction": it.comm_fraction,
            "cpu_hours_per_iteration": it.cpu_hours,
        }


#: Published Table II values for comparison (99 iterations, v13-b02).
TABLE2_PUBLISHED = {
    "test276": {"t_total_s": 244.0, "comm_fraction": 0.34,
                "cpu_hours_per_iteration": 0.19},
    "test1128": {"t_total_s": 543.0, "comm_fraction": 0.60,
                 "cpu_hours_per_iteration": 1.72},
    "test4560": {"t_total_s": 759.0, "comm_fraction": 0.67,
                 "cpu_hours_per_iteration": 9.70},
    "test18336": {"t_total_s": 1870.0, "comm_fraction": 0.86,
                  "cpu_hours_per_iteration": 96.2},
}
