"""Pinned iterated-SpMV benchmark workloads and regression checking.

The harness exists to answer two questions, repeatably:

* *How fast is the data plane right now?*  ``run_suite`` executes a
  pinned workload matrix — in-core, out-of-core, faulty — through the
  real threaded engine and reduces each run to a flat metrics dict
  (wall time, tasks/s, bytes copied, operand-cache hit rate, per-phase
  time from the Tracer) plus a bit-identity verdict against the blocked
  SciPy reference.

* *Did a change regress it?*  ``check_regression`` compares a fresh
  report against the committed ``BENCH_baseline.json``: a wall-time
  increase beyond the tolerance, **any** bytes-copied increase, or a
  lost bit-identity fails the check (that is the CI gate).

Workloads are pinned: matrix structure, seeds, node counts, memory
budgets and fault plans are fixed constants, so two runs of the same
build measure the same computation.  ``DOOC_DATA_PLANE=legacy`` (or
``run_suite(plane="legacy")``) measures the pre-zero-copy data plane —
per-load and per-serve defensive copies, operand cache off, the old
2-workers-per-node default — which is how ``BENCH_PR5.json``'s
before/after comparison is produced on a single build.
"""

from __future__ import annotations

import json
import os
from contextlib import contextmanager
from dataclasses import asdict, dataclass, replace
from pathlib import Path

import numpy as np

from repro.core.engine import DOoCEngine
from repro.core.opcache import DATA_PLANE_ENV
from repro.obs import Tracer, export_chrome_trace

#: report schema identifier; bump on incompatible field changes
SCHEMA = "dooc-bench/2"

#: codecs measured by the compression-tradeoff sweep (raw first: it is
#: the effective-bandwidth and bytes-on-disk reference the others are
#: judged against)
SWEEP_CODECS = ("raw", "zlib", "shuffle-zlib")

#: pre-change worker default, used for ``plane="legacy"`` runs so the
#: baseline measures the configuration that shipped before the zero-copy
#: data plane (2 workers per node, copies on, cache off)
LEGACY_WORKERS = 2

#: trace-phase spans aggregated into the per-workload breakdown
_PHASES = (
    ("task", "task"),
    ("task", "grant_wait"),
    ("storage", "load"),
    ("storage", "spill"),
    ("storage", "fetch_remote"),
    ("io", "read"),
    ("io", "write"),
)


@dataclass(frozen=True)
class Workload:
    """One pinned benchmark configuration (fully deterministic)."""

    name: str
    n: int                   #: global matrix dimension
    k: int                   #: K x K sub-matrix grid
    nnz_per_row: float       #: target nonzeros per row of each sub-matrix
    iterations: int          #: SpMV iterations
    n_nodes: int
    memory_budget: int       #: bytes per node
    policy: str = "simple"
    fault_seed: int | None = None  #: arm the deterministic fault plan?
    opcache_bytes: int | None = None  #: None = engine default (budget/4)
    seed: int = 20120910     #: matrix/vector generator seed (ICPP 2012)
    worker_plane: str = "thread"  #: "thread" or "process" (GIL-free)
    codec: str | None = None  #: block codec (None = engine default / raw)

    def config(self) -> dict:
        return asdict(self)


def pinned_workloads(*, quick: bool) -> list[Workload]:
    """The benchmark matrix.  ``quick`` is the CI-sized variant.

    ``out_of_core`` is *the* acceptance workload: disk-seeded sub-matrix
    files streamed through a bounded memory budget, dense enough that the
    per-task CSR decode (what the operand cache amortizes) dominates the
    SpMV kernel — the regime the paper's overlap argument targets.
    """
    if quick:
        return [
            Workload("in_core", n=1536, k=2, nnz_per_row=16.0,
                     iterations=10, n_nodes=1, memory_budget=64 * 2**20),
            Workload("in_core_process", n=1536, k=2, nnz_per_row=16.0,
                     iterations=10, n_nodes=1, memory_budget=64 * 2**20,
                     worker_plane="process"),
            Workload("out_of_core", n=16384, k=2, nnz_per_row=512.0,
                     iterations=8, n_nodes=2, memory_budget=192 * 2**20,
                     opcache_bytes=256 * 2**20),
            Workload("faulty", n=1536, k=2, nnz_per_row=16.0,
                     iterations=6, n_nodes=2, memory_budget=64 * 2**20,
                     fault_seed=0),
        ]
    return [
        Workload("in_core", n=6144, k=3, nnz_per_row=24.0,
                 iterations=12, n_nodes=1, memory_budget=256 * 2**20),
        Workload("in_core_process", n=6144, k=3, nnz_per_row=24.0,
                 iterations=12, n_nodes=1, memory_budget=256 * 2**20,
                 worker_plane="process"),
        Workload("out_of_core", n=16384, k=2, nnz_per_row=512.0,
                 iterations=16, n_nodes=2, memory_budget=192 * 2**20,
                 opcache_bytes=256 * 2**20),
        Workload("faulty", n=6144, k=3, nnz_per_row=24.0,
                 iterations=8, n_nodes=2, memory_budget=256 * 2**20,
                 fault_seed=0),
    ]


@dataclass(frozen=True)
class ConvergenceWorkload:
    """The pinned incremental/async iteration workload.

    A block-lower-triangular, strongly diagonally dominant system whose
    partitions converge at deliberately staggered rates (``dom[u]`` is
    block ``u``'s extra diagonal dominance): the best-conditioned block
    goes bitwise stationary sweeps before the worst, so workset dropout
    has room to pay off before the global residual test fires.
    """

    name: str
    n: int
    k: int
    dom: tuple[float, ...]       #: per-block diagonal dominance boost
    density: float
    seed: int
    tol: float                   #: sync/incremental residual tolerance
    max_sweeps: int
    async_tol: float
    async_staleness: int
    async_seed: int
    async_max_rounds: int

    def config(self) -> dict:
        return asdict(self)


def pinned_convergence_workload(*, quick: bool) -> ConvergenceWorkload:
    """The convergence-bench system (CI-sized when ``quick``)."""
    if quick:
        return ConvergenceWorkload(
            "convergence_quick", n=120, k=3, dom=(1e6, 50.0, 12.0),
            density=0.05, seed=9, tol=1e-30, max_sweeps=120,
            async_tol=1e-8, async_staleness=2, async_seed=1,
            async_max_rounds=150)
    return ConvergenceWorkload(
        "convergence_full", n=240, k=4, dom=(1e6, 2e3, 50.0, 12.0),
        density=0.05, seed=9, tol=1e-30, max_sweeps=200,
        async_tol=1e-8, async_staleness=2, async_seed=1,
        async_max_rounds=250)


def _build_convergence_system(cw: ConvergenceWorkload):
    """The pinned block-triangular system as (scipy A, b)."""
    import scipy.sparse as sp

    rng = np.random.default_rng(cw.seed)
    s = cw.n // cw.k
    rows = []
    for u in range(cw.k):
        row = []
        for v in range(cw.k):
            if v > u:
                row.append(sp.csr_matrix((s, s)))
            elif v < u:
                row.append(sp.random(s, s, density=cw.density,
                                     random_state=rng, format="csr"))
            else:
                blk = sp.random(s, s, density=cw.density,
                                random_state=rng, format="csr").tolil()
                rowsum = np.abs(blk).sum(axis=1).A.ravel()
                blk.setdiag(rowsum + cw.dom[u])
                row.append(blk.tocsr())
        rows.append(row)
    a = sp.csr_matrix(sp.bmat(rows, format="csr"))
    b = rng.standard_normal(cw.n)
    return a, b


class _InCoreBlockedReference:
    """In-core operator reproducing the engine's blocked summation order.

    ``matvec`` accumulates ``y_u = sum_v A_{u,v} @ x_v`` over columns in
    grid order into a zeroed buffer — float-for-float the simple-policy
    reduction on one node — so a SciPy-side Jacobi drive through it is
    the bit-identity reference for the out-of-core sync solve.
    """

    def __init__(self, a, partition):
        import scipy.sparse as sp

        self.partition = partition
        self.n = a.shape[0]
        self._diag = np.asarray(a.diagonal(), dtype=np.float64)
        self._blocks = {}
        for u in range(partition.k):
            r0, r1 = partition.part_range(u)
            for v in range(partition.k):
                c0, c1 = partition.part_range(v)
                self._blocks[(u, v)] = sp.csr_matrix(a[r0:r1, c0:c1])

    @property
    def shape(self):
        return (self.n, self.n)

    def diagonal(self) -> np.ndarray:
        return self._diag.copy()

    def matvec(self, x: np.ndarray) -> np.ndarray:
        p = self.partition
        parts = p.split_vector(np.asarray(x, dtype=np.float64))
        out = {}
        for u in range(p.k):
            y = np.zeros(p.part_length(u))
            for v in range(p.k):
                y += self._blocks[(u, v)] @ parts[v]
            out[u] = y
        return p.join_vector(out)


def run_convergence_suite(*, quick: bool = False) -> dict:
    """Run the pinned convergence workload in all three modes.

    Returns the report's ``convergence`` section: sync / incremental /
    async metrics plus the boolean verdicts
    :func:`check_convergence_invariants` gates on.  Sync and incremental
    carry the bit-identity verdict (dropout must not change a single
    bit); async carries the convergence-bound verdict
    (``||b - A x|| <= tol * ||b||`` on a *fresh* confirmation sweep).
    """
    import tempfile

    from repro.solvers import jacobi_solve
    from repro.spmv.csr import CSRBlock
    from repro.spmv.ooc_operator import OutOfCoreMatrix
    from repro.spmv.partition import GridPartition

    cw = pinned_convergence_workload(quick=quick)
    a, b = _build_convergence_system(cw)
    partition = GridPartition(cw.n, cw.k)
    blocks = partition.split_matrix(CSRBlock.from_scipy(a))
    b_norm = float(np.linalg.norm(b))

    def mkop(scratch):
        return OutOfCoreMatrix(blocks, n_nodes=1, scratch_dir=scratch,
                               policy="simple")

    def drive(mode, **kw):
        with tempfile.TemporaryDirectory() as scratch:
            op = mkop(scratch)
            res = jacobi_solve(op, b, tol=cw.tol if mode != "async"
                               else cw.async_tol,
                               max_iterations=cw.max_sweeps if mode != "async"
                               else cw.async_max_rounds,
                               mode=mode, **kw)
            log = list(op.sweep_log)
            op.engine.cleanup()
        return res, log

    sync_res, sync_log = drive("sync")
    inc_res, inc_log = drive("incremental")
    async_res, _ = drive("async", staleness=cw.async_staleness,
                         seed=cw.async_seed)

    # In-core reference with the same blocked summation order.
    ref_op = _InCoreBlockedReference(a, partition)
    ref_res = jacobi_solve(ref_op, b, tol=cw.tol,
                           max_iterations=cw.max_sweeps)

    def totals(log):
        return (sum(e["tasks"] for e in log),
                int(sum(e["disk_bytes_read"] for e in log)),
                round(sum(e["wall_seconds"] for e in log), 6))

    sync_tasks, sync_disk, sync_wall = totals(sync_log)
    inc_tasks, inc_disk, inc_wall = totals(inc_log)
    rep = inc_res.convergence
    matvec_tasks = rep.tasks_per_sweep()
    first_freeze = rep.first_freeze_sweep()
    async_bound = cw.async_tol * b_norm

    verdicts = {
        # sync result == the SciPy-built in-core reference, bit for bit
        "sync_matches_reference": bool(
            np.array_equal(sync_res.x, ref_res.x)
            and sync_res.iterations == ref_res.iterations),
        # dropout never changes the iterate sequence
        "incremental_bit_identical": bool(
            np.array_equal(inc_res.x, sync_res.x)),
        "same_iterations": inc_res.iterations == sync_res.iterations,
        # the point of the exercise: strictly less work than bulk sync
        "tasks_strictly_decrease": inc_tasks < sync_tasks,
        "disk_bytes_strictly_decrease": inc_disk < sync_disk,
        # workset-dropout invariant: per-sweep tasks never grow, and
        # strictly shrink once the first block freezes
        "dropout_monotone": all(
            nxt <= cur for cur, nxt in zip(matvec_tasks, matvec_tasks[1:])),
        "dropout_after_first_freeze": (
            first_freeze is not None
            and first_freeze < len(matvec_tasks)
            and matvec_tasks[-1] < matvec_tasks[0]),
        # async gets the convergence-bound verdict, not bit-identity
        "async_within_bound": bool(
            async_res.converged and async_res.residual_norm <= async_bound),
    }
    return {
        "config": cw.config(),
        "sync": {
            "iterations": sync_res.iterations,
            "fixpoint": sync_res.fixpoint,
            "tasks": sync_tasks,
            "disk_bytes_read": sync_disk,
            "wall_seconds": sync_wall,
            "residual_norm": sync_res.residual_norm,
        },
        "incremental": {
            "iterations": inc_res.iterations,
            "fixpoint": inc_res.fixpoint,
            "tasks": inc_tasks,
            "disk_bytes_read": inc_disk,
            "wall_seconds": inc_wall,
            "residual_norm": inc_res.residual_norm,
            "first_freeze_sweep": first_freeze,
            "fixpoint_sweep": rep.fixpoint_sweep,
            "workset_sizes": rep.workset_sizes(),
            "matvec_tasks_per_sweep": matvec_tasks,
            "total_tasks_with_aux": rep.total_tasks(),
        },
        "async": {
            "rounds": async_res.iterations,
            "staleness": cw.async_staleness,
            "residual_norm": async_res.residual_norm,
            "bound": async_bound,
            "converged": async_res.converged,
        },
        "verdicts": verdicts,
    }


def check_convergence_invariants(current: dict) -> list[str]:
    """Baseline-free gates on the report's ``convergence`` section.

    Every verdict computed by :func:`run_convergence_suite` must hold:
    dropout must be free (bit-identity, same sweep count), must pay
    (strictly fewer tasks and disk bytes than bulk-synchronous), must be
    monotone once blocks freeze, and async-Jacobi must land inside its
    documented residual bound.  Reports without the section pass.
    """
    conv = current.get("convergence")
    if not conv:
        return []
    failures = []
    for name, ok in sorted(conv.get("verdicts", {}).items()):
        if not ok:
            failures.append(f"convergence: invariant {name!r} violated "
                            "(see the report's convergence section)")
    return failures


@contextmanager
def _data_plane(plane: str):
    """Temporarily select the data plane via the environment knob."""
    if plane not in ("zerocopy", "legacy"):
        raise ValueError(f"unknown data plane {plane!r}")
    old = os.environ.get(DATA_PLANE_ENV)
    try:
        if plane == "legacy":
            os.environ[DATA_PLANE_ENV] = "legacy"
        else:
            os.environ.pop(DATA_PLANE_ENV, None)
        yield
    finally:
        if old is None:
            os.environ.pop(DATA_PLANE_ENV, None)
        else:
            os.environ[DATA_PLANE_ENV] = old


def _build_inputs(w: Workload):
    """The pinned sub-matrix grid and initial vector for ``w``."""
    from repro.spmv.generator import choose_gap_parameter, gap_uniform_csr
    from repro.spmv.partition import GridPartition

    partition = GridPartition(w.n, w.k)
    rng = np.random.default_rng(w.seed)
    blocks = {}
    for u in range(w.k):
        for v in range(w.k):
            nrows = partition.part_length(u)
            ncols = partition.part_length(v)
            d = choose_gap_parameter(ncols, w.nnz_per_row)
            blocks[(u, v)] = gap_uniform_csr(nrows, ncols, d, rng)
    x0 = rng.uniform(-1.0, 1.0, size=w.n)
    x0_parts = partition.split_vector(x0)
    return blocks, x0_parts, partition, x0


def _sum_metric(metrics: dict, name: str) -> int:
    return int(sum(per.get(name, 0) for per in metrics.values()))


def _phase_breakdown(events) -> dict[str, float]:
    out = {name: 0.0 for _, name in _PHASES}
    wanted = set(_PHASES)
    for e in events:
        if e.ph == "X" and (e.cat, e.name) in wanted:
            out[e.name] += e.dur
    return {k: round(v, 6) for k, v in sorted(out.items())}


def run_workload(w: Workload, *, trace_path: str | Path | None = None,
                 workers: int | None = None, repeats: int = 2) -> dict:
    """Execute one pinned workload; returns its flat metrics dict.

    The workload runs ``repeats`` times and the best (minimum-wall) run
    is reported — the standard noise reduction for wall-clock numbers;
    the protocol counters are deterministic across repeats.
    ``trace_path`` additionally exports the best run's Chrome trace.
    ``workers`` overrides the engine's worker count (used by the legacy
    plane to reproduce the pre-change 2-worker default).
    """
    from repro.faults import FaultPlan
    from repro.spmv.program import build_iterated_spmv, x_name
    from repro.spmv.reference import iterated_spmv_blocked_reference

    blocks, x0_parts, partition, x0 = _build_inputs(w)
    faults = None
    if w.fault_seed is not None:
        faults = FaultPlan(seed=w.fault_seed, io_transient=0.05,
                           peer_drop=0.02, task_crash=0.02)
    best = None
    for _ in range(max(repeats, 1)):
        built = build_iterated_spmv(
            blocks, x0_parts, w.iterations,
            n_nodes=w.n_nodes, policy=w.policy)
        tracer = Tracer(enabled=True, capacity=1 << 18)
        eng = DOoCEngine(
            n_nodes=w.n_nodes,
            workers=workers,
            memory_budget_per_node=w.memory_budget,
            opcache_bytes=w.opcache_bytes,
            trace=tracer,
            faults=faults,
            worker_plane=w.worker_plane,
            codec=w.codec,
        )
        try:
            report = eng.run(built.program, timeout=300.0)
            parts = {u: eng.fetch(x_name(w.iterations, u))
                     for u in range(partition.k)}
        finally:
            eng.cleanup()
        if best is None or report.wall_seconds < best[0].wall_seconds:
            best = (report, parts, eng.workers_per_node,
                    len(built.program.tasks))
    report, parts, engine_workers, tasks = best
    got = partition.join_vector(parts)
    want = iterated_spmv_blocked_reference(blocks, partition, x0, w.iterations)
    events = report.trace_events
    if trace_path is not None:
        export_chrome_trace(events, trace_path)
    wall = report.wall_seconds
    metrics = report.metrics
    hits = _sum_metric(metrics, "opcache_hits")
    misses = _sum_metric(metrics, "opcache_misses")
    bytes_copied = _sum_metric(metrics, "bytes_copied")
    phases = _phase_breakdown(events)
    logical_read = _sum_metric(metrics, "logical_bytes_read")
    disk_read = _sum_metric(metrics, "disk_bytes_read")
    read_seconds = phases.get("read", 0.0)
    io_bytes = {
        "logical_read": logical_read,
        "disk_read": disk_read,
        "logical_written": _sum_metric(metrics, "logical_bytes_written"),
        "disk_written": _sum_metric(metrics, "disk_bytes_written"),
        # ratio > 1 means the codec paid for itself in bytes; effective
        # bandwidth is *logical* bytes delivered per second of io/read
        # span (read + decode), the number a solver actually experiences
        "compression_ratio": (round(logical_read / disk_read, 4)
                              if disk_read else 1.0),
        "effective_read_mb_s": (round(logical_read / read_seconds / 1e6, 3)
                                if read_seconds > 0 else 0.0),
    }
    return {
        "config": w.config(),
        "workers": engine_workers,
        "wall_seconds": round(wall, 6),
        "tasks": tasks,
        "tasks_per_second": round(tasks / wall, 3) if wall > 0 else 0.0,
        "bytes_copied": bytes_copied,
        "bytes_copied_per_task": round(bytes_copied / tasks, 1),
        "opcache": {
            "hits": hits,
            "misses": misses,
            "hit_rate": round(hits / (hits + misses), 4) if hits + misses else 0.0,
        },
        "loads": _sum_metric(metrics, "loads"),
        "spills": _sum_metric(metrics, "spills"),
        "io_retries": _sum_metric(metrics, "io_retries"),
        "task_reexecutions": _sum_metric(metrics, "task_reexecutions"),
        "io_bytes": io_bytes,
        "phases": phases,
        "bit_identical": bool(np.array_equal(got, want)),
        "max_abs_err": float(np.max(np.abs(got - want))) if len(got) else 0.0,
    }


def run_suite(*, quick: bool = False, tag: str = "dev",
              plane: str = "zerocopy",
              worker_plane: str | None = None,
              trace_path: str | Path | None = None,
              convergence: bool = False,
              convergence_only: bool = False) -> dict:
    """Run the whole pinned matrix; returns the report dict.

    ``plane="legacy"`` measures the pre-change data plane (defensive
    copies, no operand cache, 2 workers per node) on the same build.
    ``worker_plane`` (``"thread"``/``"process"``) overrides every
    workload's pinned plane — the A/B lever for thread-vs-process runs.
    ``trace_path`` exports the out-of-core workload's Chrome trace.
    ``convergence`` additionally runs the pinned incremental/async
    workload (:func:`run_convergence_suite`) into the report's
    ``convergence`` section; ``convergence_only`` skips the perf matrix
    and produces just that section (the CI convergence-gate leg).
    """
    if convergence_only:
        return {
            "schema": SCHEMA,
            "tag": tag,
            "mode": "quick" if quick else "full",
            "data_plane": plane,
            "workloads": {},
            "codec_sweep": {},
            "convergence": run_convergence_suite(quick=quick),
            "totals": {"wall_seconds": 0.0, "tasks": 0,
                       "tasks_per_second": 0.0, "bytes_copied": 0},
        }
    workers = LEGACY_WORKERS if plane == "legacy" else None
    workloads = {}
    codec_sweep = {}
    with _data_plane(plane):
        for w in pinned_workloads(quick=quick):
            if worker_plane is not None:
                w = replace(w, worker_plane=worker_plane)
            if plane == "legacy" and w.worker_plane == "process":
                continue  # the engine (rightly) refuses the combination
            wl_trace = trace_path if w.name == "out_of_core" else None
            workloads[w.name] = run_workload(
                w, trace_path=wl_trace, workers=workers)
        if plane == "zerocopy":
            # Compression-ratio / bandwidth-tradeoff sweep: the same
            # pinned out-of-core workload re-run under each codec, so
            # the report answers "what do I pay (decode time) and what
            # do I get back (bytes off the disk path)" on one build.
            ooc = next(w for w in pinned_workloads(quick=quick)
                       if w.name == "out_of_core")
            for codec in SWEEP_CODECS:
                codec_sweep[codec] = run_workload(
                    replace(ooc, name=f"out_of_core[{codec}]", codec=codec),
                    repeats=1)
    total_wall = sum(r["wall_seconds"] for r in workloads.values())
    total_tasks = sum(r["tasks"] for r in workloads.values())
    conv = run_convergence_suite(quick=quick) if convergence else None
    report = {
        "schema": SCHEMA,
        "tag": tag,
        "mode": "quick" if quick else "full",
        "data_plane": plane,
        "workloads": workloads,
        "codec_sweep": codec_sweep,
        "totals": {
            "wall_seconds": round(total_wall, 6),
            "tasks": total_tasks,
            "tasks_per_second": (round(total_tasks / total_wall, 3)
                                 if total_wall > 0 else 0.0),
            "bytes_copied": sum(r["bytes_copied"] for r in workloads.values()),
        },
    }
    if conv is not None:
        report["convergence"] = conv
    return report


def write_report(report: dict, path: str | Path) -> Path:
    path = Path(path)
    path.write_text(json.dumps(report, indent=1, sort_keys=True) + "\n")
    return path


def load_report(path: str | Path) -> dict:
    report = json.loads(Path(path).read_text())
    if report.get("schema") != SCHEMA:
        raise ValueError(
            f"{path}: schema {report.get('schema')!r}, expected {SCHEMA!r} "
            "(refresh the baseline: python -m repro bench --quick --tag baseline)")
    return report


def check_codec_invariants(current: dict) -> list[str]:
    """Baseline-free gates on the current report's codec sweep.

    These are correctness invariants of the codec pipeline, not
    regressions against history: every codec must reproduce the SciPy
    reference bit-identically, must keep the hot loop's
    ``bytes_copied == 0`` (decode lands in the pooled segment, never a
    staging copy), and zlib must actually take bytes *off* the disk read
    path relative to raw on the pinned out-of-core workload.
    """
    failures: list[str] = []
    sweep = current.get("codec_sweep", {})
    for codec, r in sorted(sweep.items()):
        if not r.get("bit_identical", False):
            failures.append(
                f"codec_sweep[{codec}]: result not bit-identical to the "
                "SciPy reference (lossless codecs must not change bits)")
        if r.get("bytes_copied", 0) != 0:
            failures.append(
                f"codec_sweep[{codec}]: bytes_copied = "
                f"{r['bytes_copied']}, want 0 (decode must land directly "
                "in the pooled segment)")
    if "raw" in sweep and "zlib" in sweep:
        raw_disk = sweep["raw"]["io_bytes"]["disk_read"]
        zlib_disk = sweep["zlib"]["io_bytes"]["disk_read"]
        if not zlib_disk < raw_disk:
            failures.append(
                f"codec_sweep: zlib read {zlib_disk} disk bytes, raw read "
                f"{raw_disk} — compression is not reducing bytes read")
    return failures


def check_regression(current: dict, baseline: dict,
                     *, tolerance_pct: float = 25.0) -> list[str]:
    """Compare a fresh report against the committed baseline.

    Returns failure strings (empty = pass): a per-workload wall-time
    increase beyond ``tolerance_pct``, **any** bytes-copied increase
    (those copies are deterministic, so an increase is a code change,
    not noise), a lost bit-identity, or a violated codec-sweep
    invariant (:func:`check_codec_invariants` — gated on the *current*
    report alone), or a violated convergence invariant
    (:func:`check_convergence_invariants`, likewise current-only).

    A convergence-only candidate (no ``workloads``, produced by
    ``run_suite(convergence_only=True)``) is gated purely on its own
    invariants — there is nothing historical to compare.
    """
    failures: list[str] = check_codec_invariants(current)
    failures += check_convergence_invariants(current)
    if not current.get("workloads") and current.get("convergence"):
        return failures
    if current.get("mode") != baseline.get("mode"):
        failures.append(
            f"mode mismatch: current {current.get('mode')!r} vs baseline "
            f"{baseline.get('mode')!r} — compare like with like")
        return failures
    base_wl = baseline.get("workloads", {})
    cur_wl = current.get("workloads", {})
    for name, base in sorted(base_wl.items()):
        cur = cur_wl.get(name)
        if cur is None:
            failures.append(f"{name}: missing from the current report")
            continue
        b_wall, c_wall = base["wall_seconds"], cur["wall_seconds"]
        if b_wall > 0 and c_wall > b_wall * (1.0 + tolerance_pct / 100.0):
            failures.append(
                f"{name}: wall time regressed {c_wall:.3f}s vs "
                f"{b_wall:.3f}s baseline (>{tolerance_pct:.0f}% tolerance)")
        if cur["bytes_copied"] > base["bytes_copied"]:
            failures.append(
                f"{name}: bytes_copied increased {cur['bytes_copied']} vs "
                f"{base['bytes_copied']} baseline (any increase fails)")
        if not cur.get("bit_identical", False):
            failures.append(f"{name}: result no longer bit-identical to the "
                            "SciPy reference")
    return failures
