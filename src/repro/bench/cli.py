"""``python -m repro bench`` — run/check the pinned perf workloads.

Typical uses::

    python -m repro bench --quick --tag ci          # fresh quick run
    python -m repro bench --check --tolerance 25    # gate against baseline
    DOOC_DATA_PLANE=legacy python -m repro bench --quick --plane legacy \
        --tag legacy                                # pre-change plane

``--check`` compares a candidate report (``--candidate``, default
``BENCH_ci.json`` when present, else a fresh quick run) against the
committed baseline (``--baseline``, default ``BENCH_baseline.json``) and
exits 1 on a regression.  See docs/PERFORMANCE.md.
"""

from __future__ import annotations

import argparse
import sys
from pathlib import Path

from repro.bench.harness import (
    check_regression,
    load_report,
    run_suite,
    write_report,
)


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro bench",
        description="Run the pinned iterated-SpMV benchmark matrix, or "
                    "check a report against the committed baseline.",
    )
    parser.add_argument("--quick", action="store_true",
                        help="CI-sized workload matrix")
    parser.add_argument("--tag", default="dev",
                        help="report written to BENCH_<tag>.json (default dev)")
    parser.add_argument("--out", default=".", metavar="DIR",
                        help="directory for BENCH_<tag>.json (default .)")
    parser.add_argument("--plane", choices=("zerocopy", "legacy"),
                        default="zerocopy",
                        help="data plane to measure (legacy = pre-change "
                             "copies, no operand cache, 2 workers/node)")
    parser.add_argument("--worker-plane", choices=("thread", "process"),
                        default=None,
                        help="force every workload onto one worker plane "
                             "(default: each workload's pinned plane)")
    parser.add_argument("--trace", metavar="PATH", default=None,
                        help="also export the out-of-core workload's Chrome "
                             "trace to PATH")
    parser.add_argument("--convergence", action="store_true",
                        help="also run the pinned incremental/async "
                             "convergence workload into the report")
    parser.add_argument("--convergence-only", action="store_true",
                        help="run only the convergence workload (the CI "
                             "convergence-gate leg)")
    parser.add_argument("--check", action="store_true",
                        help="compare a report against the baseline instead "
                             "of (only) benchmarking")
    parser.add_argument("--candidate", metavar="PATH", default=None,
                        help="report to check (default: BENCH_ci.json if "
                             "present, else a fresh --quick run)")
    parser.add_argument("--baseline", metavar="PATH",
                        default="BENCH_baseline.json",
                        help="baseline report (default BENCH_baseline.json)")
    parser.add_argument("--tolerance", type=float, default=25.0,
                        metavar="PCT",
                        help="allowed wall-time regression in percent "
                             "(default 25; bytes-copied tolerance is always 0)")
    args = parser.parse_args(argv)

    if args.check:
        try:
            baseline = load_report(args.baseline)
        except (OSError, ValueError) as exc:
            print(f"bench: cannot load baseline: {exc}", file=sys.stderr)
            return 2
        candidate_path = args.candidate
        if candidate_path is None and Path("BENCH_ci.json").exists():
            candidate_path = "BENCH_ci.json"
        if candidate_path is not None:
            try:
                current = load_report(candidate_path)
            except (OSError, ValueError) as exc:
                print(f"bench: cannot load candidate: {exc}", file=sys.stderr)
                return 2
            print(f"checking {candidate_path} against {args.baseline} "
                  f"(tolerance {args.tolerance:g}%)")
        else:
            print(f"no candidate report; running a fresh "
                  f"{baseline.get('mode', 'quick')} suite to check against "
                  f"{args.baseline}")
            current = run_suite(quick=baseline.get("mode") != "full",
                                tag="check", plane=args.plane,
                                worker_plane=args.worker_plane)
        failures = check_regression(current, baseline,
                                    tolerance_pct=args.tolerance)
        if failures:
            for f in failures:
                print(f"REGRESSION: {f}", file=sys.stderr)
            return 1
        print("bench check passed")
        return 0

    out_dir = Path(args.out)
    out_dir.mkdir(parents=True, exist_ok=True)
    report = run_suite(quick=args.quick, tag=args.tag, plane=args.plane,
                       worker_plane=args.worker_plane,
                       trace_path=args.trace,
                       convergence=args.convergence,
                       convergence_only=args.convergence_only)
    path = write_report(report, out_dir / f"BENCH_{args.tag}.json")
    totals = report["totals"]
    print(f"wrote {path}")
    for name, wl in report["workloads"].items():
        print(f"  {name:12s} {wl['wall_seconds']:8.3f}s "
              f"{wl['tasks_per_second']:8.1f} tasks/s "
              f"copied {wl['bytes_copied']:>12,d} B "
              f"cache {wl['opcache']['hit_rate']:.0%} "
              f"{'bit-identical' if wl['bit_identical'] else 'MISMATCH'}")
    print(f"  {'total':12s} {totals['wall_seconds']:8.3f}s "
          f"{totals['tasks_per_second']:8.1f} tasks/s "
          f"copied {totals['bytes_copied']:>12,d} B")
    for codec, wl in report.get("codec_sweep", {}).items():
        io = wl["io_bytes"]
        print(f"  codec {codec:12s} {wl['wall_seconds']:8.3f}s "
              f"ratio {io['compression_ratio']:6.3f} "
              f"disk read {io['disk_read']:>12,d} B "
              f"effective {io['effective_read_mb_s']:8.1f} MB/s "
              f"{'bit-identical' if wl['bit_identical'] else 'MISMATCH'}")
    conv = report.get("convergence")
    if conv:
        sync, inc, asy = conv["sync"], conv["incremental"], conv["async"]
        print(f"  convergence  sync {sync['iterations']} sweeps "
              f"{sync['tasks']} tasks {sync['disk_bytes_read']:,d} B read")
        print(f"               incremental {inc['iterations']} sweeps "
              f"{inc['tasks']} tasks {inc['disk_bytes_read']:,d} B read "
              f"(first freeze sweep {inc['first_freeze_sweep']})")
        print(f"               async {asy['rounds']} rounds "
              f"residual {asy['residual_norm']:.3e} "
              f"bound {asy['bound']:.3e}")
        for name, ok in sorted(conv["verdicts"].items()):
            print(f"               {'ok  ' if ok else 'FAIL'} {name}")
    sweep = report.get("codec_sweep", {}).values()
    if not all(wl["bit_identical"]
               for wl in (*report["workloads"].values(), *sweep)):
        print("bench: result mismatch against the SciPy reference",
              file=sys.stderr)
        return 1
    if conv and not all(conv["verdicts"].values()):
        print("bench: convergence invariant violated", file=sys.stderr)
        return 1
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
