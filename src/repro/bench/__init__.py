"""Reproducible performance harness (``python -m repro bench``).

Runs the pinned iterated-SpMV workload matrix (in-core, out-of-core,
faulty) against the current build and emits a schema-versioned
``BENCH_<tag>.json`` — wall time, tasks/s, bytes copied, operand-cache
hit rate, and a per-phase breakdown from the runtime Tracer.  The
committed ``BENCH_baseline.json`` is the artifact every later perf PR is
judged against: CI re-runs the quick matrix and fails on a wall-time
regression beyond tolerance or on *any* bytes-copied increase.

See docs/PERFORMANCE.md for how to read and refresh the baseline.
"""

from repro.bench.harness import (
    SCHEMA,
    ConvergenceWorkload,
    Workload,
    check_convergence_invariants,
    check_regression,
    load_report,
    pinned_convergence_workload,
    pinned_workloads,
    run_convergence_suite,
    run_suite,
    run_workload,
    write_report,
)

__all__ = [
    "SCHEMA",
    "ConvergenceWorkload",
    "Workload",
    "check_convergence_invariants",
    "check_regression",
    "load_report",
    "pinned_convergence_workload",
    "pinned_workloads",
    "run_convergence_suite",
    "run_suite",
    "run_workload",
    "write_report",
]
