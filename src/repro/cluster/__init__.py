"""Simulated cluster hardware: specs, nodes, interconnect, and GPFS.

The presets encode the two machines of the paper:

* :func:`repro.cluster.spec.carver_ssd_testbed` — the experimental SSD
  testbed on NERSC Carver (Section V): 40 compute + 10 I/O nodes, two
  Virident tachIOn cards per I/O node (1 GB/s each, 20 GB/s peak
  aggregate), 4X QDR InfiniBand, GPFS.
* :func:`repro.cluster.spec.hopper` — NERSC Hopper, the Cray XE6 used for
  the in-core MFDn baseline (Section II).
"""

from repro.cluster.spec import (
    ClusterSpec,
    FilesystemSpec,
    InterconnectSpec,
    IONodeSpec,
    NodeSpec,
    SSDSpec,
    carver_colocated_ssd,
    carver_ssd_testbed,
    hopper,
)
from repro.cluster.machine import SimCluster, SimNode

__all__ = [
    "NodeSpec",
    "SSDSpec",
    "IONodeSpec",
    "FilesystemSpec",
    "InterconnectSpec",
    "ClusterSpec",
    "carver_ssd_testbed",
    "carver_colocated_ssd",
    "hopper",
    "SimCluster",
    "SimNode",
]
