"""Hardware specifications and machine presets.

All constants in the presets come straight from the paper's Section II/V or
are derived from a single published measurement; each derivation is noted
inline so the calibration story stays auditable (see DESIGN.md §5).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.util.units import GB, GiB, gbit_to_bytes


@dataclass(frozen=True)
class NodeSpec:
    """A compute node."""

    name: str
    cores: int
    clock_hz: float
    dram_bytes: int
    #: effective SpMV rate per core in flop/s (memory-bound, not peak FP).
    spmv_flops_per_core: float
    nic_bytes_per_s: float
    #: aggregate read bandwidth of node-local SSD cards (0 = none); the
    #: paper's Section VI-A proposal puts the cards "on the compute nodes
    #: themselves"
    local_ssd_bytes_per_s: float = 0.0

    def __post_init__(self) -> None:
        if self.cores < 1:
            raise ValueError("node needs at least one core")
        if min(self.clock_hz, self.dram_bytes, self.spmv_flops_per_core,
               self.nic_bytes_per_s) <= 0:
            raise ValueError(f"non-positive node parameter in {self.name!r}")
        if self.local_ssd_bytes_per_s < 0:
            raise ValueError("local SSD bandwidth must be non-negative")

    @property
    def spmv_flops(self) -> float:
        """Aggregate node SpMV throughput when all cores participate."""
        return self.cores * self.spmv_flops_per_core


@dataclass(frozen=True)
class SSDSpec:
    """A flash storage card (e.g. Virident tachIOn 400 GB)."""

    name: str
    capacity_bytes: int
    read_bytes_per_s: float
    write_bytes_per_s: float
    latency_s: float = 50e-6

    def __post_init__(self) -> None:
        if min(self.capacity_bytes, self.read_bytes_per_s, self.write_bytes_per_s) <= 0:
            raise ValueError(f"non-positive SSD parameter in {self.name!r}")


@dataclass(frozen=True)
class IONodeSpec:
    """An I/O server node hosting SSD cards behind the parallel filesystem."""

    cards: int
    card: SSDSpec
    nic_bytes_per_s: float

    def __post_init__(self) -> None:
        if self.cards < 1:
            raise ValueError("I/O node needs at least one card")

    @property
    def read_bytes_per_s(self) -> float:
        """Peak streaming read bandwidth of one I/O node."""
        return min(self.cards * self.card.read_bytes_per_s, self.nic_bytes_per_s)


@dataclass(frozen=True)
class FilesystemSpec:
    """Parallel-filesystem behaviour knobs (the GPFS model).

    ``efficiency`` scales the hardware peak down to the deliverable
    aggregate (the paper observes 18.5-18.7 of 20 GB/s => ~0.93).
    ``client_bytes_per_s`` caps a single client's streaming rate; derived
    from the paper's 1-node run (0.10 TB x 4 iters / 290 s ~ 1.4 GB/s
    with 0-13% non-I/O time).  ``jitter_cv`` is the coefficient of
    variation of per-read service time, modelling the "noticeable
    variation in read bandwidth" the paper attributes to the shared GPFS.
    """

    name: str = "gpfs"
    efficiency: float = 0.93
    client_bytes_per_s: float = 1.45 * GB
    jitter_cv: float = 0.10
    open_latency_s: float = 2e-3
    #: fractional loss of deliverable aggregate bandwidth per concurrent
    #: client: GPFS's dynamic striping/prefetch tuning degrades under many
    #: concurrent streaming readers (Section VI's complaint); calibrated on
    #: Table III's 25/36-node rows
    contention_loss_per_client: float = 0.004

    def __post_init__(self) -> None:
        if not 0 < self.efficiency <= 1:
            raise ValueError("efficiency must be in (0, 1]")
        if self.client_bytes_per_s <= 0:
            raise ValueError("client bandwidth must be positive")
        if self.jitter_cv < 0:
            raise ValueError("jitter_cv must be non-negative")
        if not 0 <= self.contention_loss_per_client < 0.02:
            raise ValueError("contention loss per client out of range")

    def aggregate_efficiency(self, clients: int) -> float:
        """Effective efficiency with ``clients`` concurrent readers."""
        return self.efficiency * max(0.2, 1.0 - self.contention_loss_per_client * clients)


@dataclass(frozen=True)
class InterconnectSpec:
    """Point-to-point fabric (per-port bandwidth, per-message latency)."""

    name: str
    port_bytes_per_s: float
    latency_s: float

    def __post_init__(self) -> None:
        if self.port_bytes_per_s <= 0 or self.latency_s < 0:
            raise ValueError(f"bad interconnect parameters in {self.name!r}")


@dataclass(frozen=True)
class ClusterSpec:
    """A full machine: compute nodes, I/O nodes, fabric, filesystem."""

    name: str
    compute_nodes: int
    node: NodeSpec
    interconnect: InterconnectSpec
    io_nodes: int = 0
    io_node: IONodeSpec | None = None
    filesystem: FilesystemSpec = field(default_factory=FilesystemSpec)

    def __post_init__(self) -> None:
        if self.compute_nodes < 1:
            raise ValueError("cluster needs at least one compute node")
        if self.io_nodes and self.io_node is None:
            raise ValueError("io_nodes > 0 requires an io_node spec")

    @property
    def peak_storage_bytes_per_s(self) -> float:
        """Hardware aggregate read bandwidth of the storage system."""
        if self.io_node is None:
            return 0.0
        return self.io_nodes * self.io_node.read_bytes_per_s

    @property
    def deliverable_storage_bytes_per_s(self) -> float:
        """Peak scaled by filesystem efficiency (what clients can see)."""
        return self.peak_storage_bytes_per_s * self.filesystem.efficiency

    @property
    def total_cores(self) -> int:
        return self.compute_nodes * self.node.cores


def carver_ssd_testbed(*, compute_nodes: int = 40) -> ClusterSpec:
    """The experimental SSD testbed on Carver (paper Section V).

    40 compute + 10 I/O nodes; 2x Intel Xeon X5550 (8 cores) @ 2.67 GHz and
    24 GB DDR3 per node; 4X QDR InfiniBand (32 Gb/s); each I/O node has two
    Virident tachIOn 400 GB cards at 1 GB/s sustained read each, for a
    20 GB/s system peak.  The per-core effective SpMV rate (0.34 Gflop/s,
    ~2.7 Gflop/s per node) is derived from Table III's 1-node row: 13% of
    290 s not overlapped with I/O matches 102 Gflop of un-overlapped SpMV
    at that rate — memory-bound SpMV on Nehalem-era DDR3.
    """
    node = NodeSpec(
        name="carver-compute",
        cores=8,
        clock_hz=2.67e9,
        dram_bytes=24 * GiB,
        spmv_flops_per_core=0.34e9,
        nic_bytes_per_s=gbit_to_bytes(32.0),
    )
    card = SSDSpec(
        name="virident-tachion-400",
        capacity_bytes=400 * GB,
        read_bytes_per_s=1.0 * GB,
        write_bytes_per_s=0.9 * GB,
    )
    io_node = IONodeSpec(cards=2, card=card, nic_bytes_per_s=gbit_to_bytes(32.0))
    return ClusterSpec(
        name="carver-ssd-testbed",
        compute_nodes=compute_nodes,
        node=node,
        interconnect=InterconnectSpec(
            name="4x-qdr-infiniband",
            port_bytes_per_s=gbit_to_bytes(32.0),
            latency_s=2e-6,
        ),
        io_nodes=10,
        io_node=io_node,
        filesystem=FilesystemSpec(),
    )


def carver_colocated_ssd(*, compute_nodes: int = 40) -> ClusterSpec:
    """The Section VI-A future-work configuration: the same testbed, but
    with the two tachIOn cards on each *compute* node.

    Sub-matrix reads come off the local PCIe cards (2 GB/s per node, no
    shared-filesystem client cap, no aggregate ceiling, no jitter from
    other tenants); the InfiniBand fabric carries only vector traffic.
    """
    base = carver_ssd_testbed(compute_nodes=compute_nodes)
    import dataclasses

    node = dataclasses.replace(base.node, name="carver-colocated",
                               local_ssd_bytes_per_s=2.0 * GB)
    return dataclasses.replace(
        base,
        name="carver-colocated-ssd",
        node=node,
        io_nodes=0,
        io_node=None,
        filesystem=FilesystemSpec(jitter_cv=0.0, open_latency_s=1e-4,
                                  contention_loss_per_client=0.0),
    )


def hopper(*, compute_nodes: int = 6384) -> ClusterSpec:
    """NERSC Hopper, the Cray XE6 of the in-core MFDn baseline.

    24 cores (2x 12-core AMD MagnyCours) and 32 GB per node, Gemini
    interconnect.  The effective per-core SpMV rate (0.1 Gflop/s,
    single-threaded MFDn v13-b02) is derived from Table II's test_1128 run:
    compute share of an iteration ~ 2.19 s over 1128 cores for 2 x 1.24e11
    flops.
    """
    node = NodeSpec(
        name="hopper-compute",
        cores=24,
        clock_hz=2.1e9,
        dram_bytes=32 * GiB,
        spmv_flops_per_core=0.1e9,
        nic_bytes_per_s=gbit_to_bytes(52.0),  # Gemini ~6.5 GB/s per direction
    )
    return ClusterSpec(
        name="hopper",
        compute_nodes=compute_nodes,
        node=node,
        interconnect=InterconnectSpec(
            name="cray-gemini",
            port_bytes_per_s=gbit_to_bytes(52.0),
            latency_s=1.5e-6,
        ),
    )
