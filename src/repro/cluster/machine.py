"""The simulated machine: nodes, fabric, and filesystem service.

``SimCluster`` instantiates, for a :class:`~repro.cluster.spec.ClusterSpec`:

* per compute node — a core :class:`~repro.sim.primitives.Resource`, a pair
  of duplex NIC links (tx / rx), and a GPFS *client* link capping the node's
  streaming ingest (GPFS client-side protocol overhead; see DESIGN.md §5);
* a single *storage aggregate* link whose capacity is the deliverable
  filesystem bandwidth (hardware peak x efficiency);
* a shared max-min-fair :class:`~repro.sim.flow.FlowNetwork` carrying both
  filesystem reads and node-to-node transfers, so heavy GPFS traffic
  "encumbers the network for other traffic" exactly as Section VI warns.

Filesystem reads traverse ``[storage_agg, node.rx, node.fs_client]``; a
message from A to B traverses ``[A.tx, B.rx]``.  Per-read service time is
jittered log-normally (shared-GPFS variation, Section V).
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.cluster.spec import ClusterSpec
from repro.sim.flow import FlowNetwork, Link
from repro.sim.kernel import Environment, Event
from repro.sim.primitives import Resource
from repro.sim.trace import TraceRecorder
from repro.util.rng import RngTree


@dataclass
class SimNode:
    """Runtime handle for one simulated compute node."""

    index: int
    name: str
    cores: Resource
    tx: Link
    rx: Link
    fs_client: Link
    dram_bytes: int
    spmv_flops_per_core: float
    bytes_read: float = 0.0
    bytes_sent: float = 0.0
    flops_done: float = 0.0
    io_busy: float = 0.0  # union handled by trace; this is summed service time
    #: receive-side message-processing bottleneck (storage-filter path):
    #: deserialization + buffer copies + request handling per inbound
    #: vector buffer; None disables it
    vec_service: Link | None = None
    #: node-local SSD cards (Section VI-A colocated configuration)
    local_ssd: Link | None = None
    _rng: np.random.Generator | None = field(default=None, repr=False)


class SimCluster:
    """Executable model of a cluster for the DES kernel."""

    def __init__(
        self,
        env: Environment,
        spec: ClusterSpec,
        *,
        rng: RngTree | None = None,
        trace: TraceRecorder | None = None,
        nodes_in_use: int | None = None,
        vector_service_bytes_per_s: float | None = None,
    ):
        if nodes_in_use is not None and not 1 <= nodes_in_use <= spec.compute_nodes:
            raise ValueError(
                f"nodes_in_use={nodes_in_use} outside 1..{spec.compute_nodes}"
            )
        self.env = env
        self.spec = spec
        self.rng = rng or RngTree(0)
        self.trace = trace or TraceRecorder(enabled=False)
        self.network = FlowNetwork(env)
        self.n_nodes = nodes_in_use or spec.compute_nodes

        self.storage_agg: Link | None = None
        if spec.io_nodes:
            clients = nodes_in_use or spec.compute_nodes
            self.storage_agg = Link(
                "storage-aggregate",
                spec.peak_storage_bytes_per_s
                * spec.filesystem.aggregate_efficiency(clients),
            )

        self.nodes: list[SimNode] = []
        for i in range(self.n_nodes):
            name = f"n{i}"
            self.nodes.append(
                SimNode(
                    index=i,
                    name=name,
                    cores=Resource(env, capacity=spec.node.cores),
                    tx=Link(f"{name}.tx", spec.node.nic_bytes_per_s),
                    rx=Link(f"{name}.rx", spec.node.nic_bytes_per_s),
                    fs_client=Link(
                        f"{name}.fsclient", spec.filesystem.client_bytes_per_s
                    ),
                    vec_service=(
                        Link(f"{name}.vecsvc", vector_service_bytes_per_s)
                        if vector_service_bytes_per_s else None
                    ),
                    local_ssd=(
                        Link(f"{name}.ssd", spec.node.local_ssd_bytes_per_s)
                        if spec.node.local_ssd_bytes_per_s > 0 else None
                    ),
                    dram_bytes=spec.node.dram_bytes,
                    spmv_flops_per_core=spec.node.spmv_flops_per_core,
                    _rng=self.rng.child("node-jitter", i),
                )
            )

    # -- filesystem --------------------------------------------------------

    def _jitter(self, node: SimNode) -> float:
        """Multiplicative service-time factor for one filesystem read."""
        cv = self.spec.filesystem.jitter_cv
        if cv <= 0:
            return 1.0
        # Log-normal with unit mean and the requested coefficient of variation.
        sigma2 = np.log1p(cv * cv)
        return float(node._rng.lognormal(mean=-sigma2 / 2, sigma=np.sqrt(sigma2)))

    def fs_read(self, node_index: int, nbytes: float, label: str = "read") -> Event:
        """Read ``nbytes`` from the storage system into a node.

        Shared-filesystem clusters route through [aggregate, NIC, client];
        colocated-SSD nodes (Section VI-A) read straight off their local
        cards.  Effective bytes are inflated by the per-read jitter factor
        so that slow reads occupy the shared links longer — which is what
        makes barriers amplify stragglers.
        """
        node = self.nodes[node_index]
        if self.storage_agg is not None:
            route = [self.storage_agg, node.rx, node.fs_client]
        elif node.local_ssd is not None:
            route = [node.local_ssd]
        else:
            raise RuntimeError(f"cluster {self.spec.name!r} has no storage system")
        effective = nbytes * self._jitter(node)
        start = self.env.now
        done = self.env.event()

        def finish(ev: Event) -> None:
            node.bytes_read += nbytes
            node.io_busy += self.env.now - start
            self.trace.interval(node.name, "io", label, start, self.env.now)
            done.succeed(self.env.now - start)

        def start_flow(ev: Event | None) -> None:
            flow_done = self.network.transfer(route, effective)
            flow_done.callbacks.append(finish)  # type: ignore[union-attr]

        latency = self.spec.filesystem.open_latency_s
        if latency > 0:
            self.env.timeout(latency).callbacks.append(start_flow)  # type: ignore[union-attr]
        else:
            start_flow(None)
        return done

    # -- node-to-node messaging ---------------------------------------------

    def send(
        self, src_index: int, dst_index: int, nbytes: float, label: str = "msg",
        *, flow_cap: float | None = None, via_service: bool = False,
    ) -> Event:
        """Transfer bytes from one node to another over the fabric.

        ``flow_cap`` bounds this single flow's rate (models the effective
        point-to-point bandwidth of the message-passing layer, below the
        raw link rate) by threading the flow through a private link.
        ``via_service`` additionally routes through the destination's
        receive-side message-processing link (when the cluster has one).
        """
        if src_index == dst_index:
            done = self.env.event()
            done.succeed(0.0)  # intra-node: a memcpy we charge to compute
            return done
        src, dst = self.nodes[src_index], self.nodes[dst_index]
        start = self.env.now
        done = self.env.event()
        links = [src.tx, dst.rx]
        if via_service and dst.vec_service is not None:
            links.append(dst.vec_service)
        if flow_cap is not None:
            links.append(Link(f"flowcap-{src.name}-{dst.name}-{start}", flow_cap))
        flow_done = self.network.transfer(links, nbytes)

        def finish(ev: Event) -> None:
            src.bytes_sent += nbytes
            self.trace.interval(src.name, "send", label, start, self.env.now)
            self.trace.interval(dst.name, "recv", label, start, self.env.now)
            done.succeed(self.env.now - start)

        flow_done.callbacks.append(finish)  # type: ignore[union-attr]
        return done

    # -- computation ---------------------------------------------------------

    def compute(
        self, node_index: int, flops: float, *, cores: int = 1, label: str = "compute"
    ):
        """Process generator: run ``flops`` of work on ``cores`` cores.

        Yields inside; use as ``yield env.process(cluster.compute(...))``.
        """
        node = self.nodes[node_index]
        if cores < 1 or cores > node.cores.capacity:
            raise ValueError(f"cores={cores} outside node capacity")
        req = yield node.cores.request(cores)
        start = self.env.now
        try:
            duration = flops / (cores * node.spmv_flops_per_core)
            yield self.env.timeout(duration)
            node.flops_done += flops
        finally:
            node.cores.release(req)
        self.trace.interval(node.name, "compute", label, start, self.env.now)
        return self.env.now - start

    # -- metrics -------------------------------------------------------------

    def total_bytes_read(self) -> float:
        return sum(n.bytes_read for n in self.nodes)

    def total_flops(self) -> float:
        return sum(n.flops_done for n in self.nodes)
