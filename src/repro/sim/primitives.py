"""Synchronization and capacity primitives for the DES kernel.

All primitives are strictly FIFO so simulations are deterministic and fair,
matching the paper's assumption that storage/scheduler queues serve requests
in arrival order.
"""

from __future__ import annotations

from collections import deque
from collections.abc import Callable
from typing import Any, Deque

from repro.sim.kernel import Environment, Event, SimulationError

__all__ = ["Resource", "Mutex", "Store", "Container", "Barrier"]


class _Request(Event):
    """Event handed to a resource acquirer; usable as a release token."""

    __slots__ = ("resource", "amount")

    def __init__(self, env: Environment, resource: Resource, amount: int):
        super().__init__(env)
        self.resource = resource
        self.amount = amount

    def release(self) -> None:
        self.resource.release(self)

    # Allow ``with (yield res.request()) ...``-free manual style while still
    # supporting context-manager use inside generators.
    def __enter__(self) -> _Request:
        return self

    def __exit__(self, *exc: object) -> None:
        self.release()


class Resource:
    """A counted resource with FIFO admission (e.g. CPU cores, I/O slots)."""

    def __init__(self, env: Environment, capacity: int = 1):
        if capacity < 1:
            raise ValueError(f"capacity must be >= 1, got {capacity}")
        self.env = env
        self.capacity = capacity
        self.in_use = 0
        self._waiting: Deque[_Request] = deque()
        self._granted: set[int] = set()

    @property
    def available(self) -> int:
        return self.capacity - self.in_use

    @property
    def queue_length(self) -> int:
        return len(self._waiting)

    def request(self, amount: int = 1) -> _Request:
        """Return an event that fires when ``amount`` units are granted."""
        if amount < 1 or amount > self.capacity:
            raise ValueError(f"request of {amount} on capacity {self.capacity}")
        req = _Request(self.env, self, amount)
        self._waiting.append(req)
        self._grant()
        return req

    def release(self, request: _Request) -> None:
        """Return units previously granted to ``request``."""
        if id(request) not in self._granted:
            raise SimulationError("release of a request that was never granted")
        self._granted.discard(id(request))
        self.in_use -= request.amount
        self._grant()

    def _grant(self) -> None:
        # Strict FIFO: never lets a small request jump a blocked large one.
        while self._waiting and self._waiting[0].amount <= self.available:
            req = self._waiting.popleft()
            self.in_use += req.amount
            self._granted.add(id(req))
            req.succeed(req)


class Mutex(Resource):
    """Capacity-1 resource; a readable name for critical sections."""

    def __init__(self, env: Environment):
        super().__init__(env, capacity=1)


class Store:
    """An unbounded-or-bounded FIFO mailbox of Python objects."""

    def __init__(self, env: Environment, capacity: int | None = None):
        if capacity is not None and capacity < 1:
            raise ValueError("capacity must be None or >= 1")
        self.env = env
        self.capacity = capacity
        self.items: Deque[Any] = deque()
        self._getters: Deque[Event] = deque()
        self._putters: Deque[tuple[Event, Any]] = deque()

    def __len__(self) -> int:
        return len(self.items)

    def put(self, item: Any) -> Event:
        """Event firing once the item has been accepted."""
        ev = Event(self.env)
        self._putters.append((ev, item))
        self._settle()
        return ev

    def get(self) -> Event:
        """Event firing with the oldest item."""
        ev = Event(self.env)
        self._getters.append(ev)
        self._settle()
        return ev

    def _settle(self) -> None:
        progress = True
        while progress:
            progress = False
            while self._putters and (self.capacity is None or len(self.items) < self.capacity):
                ev, item = self._putters.popleft()
                self.items.append(item)
                ev.succeed()
                progress = True
            while self._getters and self.items:
                self._getters.popleft().succeed(self.items.popleft())
                progress = True


class Container:
    """A continuous-level tank (e.g. bytes of free DRAM)."""

    def __init__(self, env: Environment, capacity: float, init: float = 0.0):
        if capacity <= 0:
            raise ValueError("capacity must be positive")
        if not 0 <= init <= capacity:
            raise ValueError("init outside [0, capacity]")
        self.env = env
        self.capacity = capacity
        self.level = init
        self._getters: Deque[tuple[Event, float]] = deque()
        self._putters: Deque[tuple[Event, float]] = deque()

    def put(self, amount: float) -> Event:
        """Fires when ``amount`` fits below capacity."""
        if amount <= 0:
            raise ValueError("put amount must be positive")
        if amount > self.capacity:
            raise ValueError("put amount exceeds total capacity")
        ev = Event(self.env)
        self._putters.append((ev, amount))
        self._settle()
        return ev

    def get(self, amount: float) -> Event:
        """Fires when ``amount`` can be drawn from the level."""
        if amount <= 0:
            raise ValueError("get amount must be positive")
        if amount > self.capacity:
            raise ValueError("get amount exceeds total capacity")
        ev = Event(self.env)
        self._getters.append((ev, amount))
        self._settle()
        return ev

    def _settle(self) -> None:
        progress = True
        while progress:
            progress = False
            if self._putters and self.level + self._putters[0][1] <= self.capacity:
                ev, amount = self._putters.popleft()
                self.level += amount
                ev.succeed()
                progress = True
            if self._getters and self._getters[0][1] <= self.level:
                ev, amount = self._getters.popleft()
                self.level -= amount
                ev.succeed()
                progress = True


class Barrier:
    """A reusable N-party barrier (models the paper's global syncs)."""

    def __init__(self, env: Environment, parties: int,
                 on_release: Callable[[int], None] | None = None):
        if parties < 1:
            raise ValueError("parties must be >= 1")
        self.env = env
        self.parties = parties
        self.generation = 0
        self._arrived: list[Event] = []
        self._on_release = on_release

    @property
    def waiting(self) -> int:
        return len(self._arrived)

    def wait(self) -> Event:
        """Event that fires (with the generation number) when all arrive."""
        ev = Event(self.env)
        self._arrived.append(ev)
        if len(self._arrived) == self.parties:
            generation, self.generation = self.generation, self.generation + 1
            arrived, self._arrived = self._arrived, []
            if self._on_release is not None:
                self._on_release(generation)
            for waiter in arrived:
                waiter.succeed(generation)
        return ev
