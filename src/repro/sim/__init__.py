"""Deterministic discrete-event simulation kernel.

A minimal, dependency-free core in the style of SimPy: generator-based
processes communicate through :class:`Event` objects, and an
:class:`Environment` advances virtual time over a binary heap of scheduled
events.  Determinism is guaranteed by breaking ties on (time, priority,
sequence number).

On top of the kernel, :mod:`repro.sim.primitives` provides capacity-limited
resources and mailbox stores, and :mod:`repro.sim.flow` provides a max-min
fair fluid-flow bandwidth network used to model the SSD testbed's GPFS and
InfiniBand fabric.
"""

from repro.sim.kernel import (
    Environment,
    Event,
    Interrupt,
    Process,
    SimulationError,
    Timeout,
)
from repro.sim.primitives import Barrier, Container, Mutex, Resource, Store
from repro.sim.flow import FlowNetwork, Link

__all__ = [
    "Environment",
    "Event",
    "Interrupt",
    "Process",
    "SimulationError",
    "Timeout",
    "Resource",
    "Store",
    "Container",
    "Mutex",
    "Barrier",
    "FlowNetwork",
    "Link",
]
