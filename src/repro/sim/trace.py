"""Interval trace recorder: the raw material for Gantt charts (Fig. 5).

Components record named intervals (``lane``, ``kind``, ``label``, start/end)
plus point events.  The recorder can summarize busy time per lane/kind, which
is how the experiment harness computes "non-overlapped time" and I/O
fractions the way the paper extracts them from application logs.
"""

from __future__ import annotations

from dataclasses import dataclass
from collections.abc import Iterable, Iterator


@dataclass(frozen=True)
class Interval:
    """A closed-open [start, end) activity on a lane."""

    lane: str
    kind: str
    label: str
    start: float
    end: float

    @property
    def duration(self) -> float:
        return self.end - self.start


@dataclass(frozen=True)
class Point:
    """An instantaneous marker (barrier release, iteration boundary...)."""

    lane: str
    kind: str
    label: str
    time: float


class TraceRecorder:
    """Accumulates intervals/points; cheap when disabled."""

    def __init__(self, enabled: bool = True):
        self.enabled = enabled
        self.intervals: list[Interval] = []
        self.points: list[Point] = []

    def interval(self, lane: str, kind: str, label: str, start: float, end: float) -> None:
        """Record one activity; no-op when disabled."""
        if not self.enabled:
            return
        if end < start:
            raise ValueError(f"interval ends before it starts: {label} [{start}, {end})")
        self.intervals.append(Interval(lane, kind, label, start, end))

    def point(self, lane: str, kind: str, label: str, time: float) -> None:
        if not self.enabled:
            return
        self.points.append(Point(lane, kind, label, time))

    # -- queries -------------------------------------------------------------

    def lanes(self) -> list[str]:
        return sorted({iv.lane for iv in self.intervals})

    def select(self, *, lane: str | None = None, kind: str | None = None) -> Iterator[Interval]:
        for iv in self.intervals:
            if lane is not None and iv.lane != lane:
                continue
            if kind is not None and iv.kind != kind:
                continue
            yield iv

    def busy_time(self, *, lane: str | None = None, kind: str | None = None) -> float:
        """Total length of the union of the matching intervals.

        Overlapping intervals are merged first, so concurrent I/O streams on
        one lane are not double counted — this is exactly how the paper's
        "time spent reading from the file system" is defined.
        """
        spans = sorted((iv.start, iv.end) for iv in self.select(lane=lane, kind=kind))
        total = 0.0
        cur_start: float | None = None
        cur_end = 0.0
        for start, end in spans:
            if cur_start is None:
                cur_start, cur_end = start, end
            elif start <= cur_end:
                cur_end = max(cur_end, end)
            else:
                total += cur_end - cur_start
                cur_start, cur_end = start, end
        if cur_start is not None:
            total += cur_end - cur_start
        return total

    def makespan(self) -> float:
        """End of the last interval (0.0 when empty)."""
        return max((iv.end for iv in self.intervals), default=0.0)

    def count(self, *, lane: str | None = None, kind: str | None = None) -> int:
        return sum(1 for _ in self.select(lane=lane, kind=kind))


def render_gantt(
    intervals: Iterable[Interval],
    *,
    width: int = 100,
    kind_glyphs: dict[str, str] | None = None,
) -> str:
    """ASCII Gantt chart, one row per lane — the textual Fig. 5.

    ``kind_glyphs`` maps interval kinds to single characters; kinds
    without a mapping render as their first letter.
    """
    ivs = list(intervals)
    if not ivs:
        return "(empty trace)"
    t_end = max(iv.end for iv in ivs)
    t_start = min(iv.start for iv in ivs)
    span = max(t_end - t_start, 1e-12)
    glyphs = kind_glyphs or {}
    lanes = sorted({iv.lane for iv in ivs})
    lane_width = max(len(l) for l in lanes) + 1
    rows = []
    for lane in lanes:
        row = [" "] * width
        for iv in sorted((iv for iv in ivs if iv.lane == lane), key=lambda i: i.start):
            a = int((iv.start - t_start) / span * (width - 1))
            b = int((iv.end - t_start) / span * (width - 1))
            glyph = glyphs.get(iv.kind, iv.kind[:1] or "?")
            for pos in range(a, max(b, a) + 1):
                row[pos] = glyph
        rows.append(f"{lane:<{lane_width}}|{''.join(row)}|")
    header = f"{'':<{lane_width}}|{'time ->':<{width}}|"
    return "\n".join([header, *rows])
