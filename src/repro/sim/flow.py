"""Max-min fair fluid-flow bandwidth network.

Data movement in the simulated testbed (GPFS reads over InfiniBand, vector
exchanges between compute nodes) is modeled as *flows* traversing capacitated
*links*.  At any instant, the rate of each active flow is its max-min fair
share computed by progressive filling: repeatedly saturate the bottleneck
link whose equal share is smallest, freeze the flows crossing it, and
continue with residual capacities.  Whenever the flow set changes, remaining
bytes are advanced at the old rates and rates are recomputed; flow completion
events are rescheduled accordingly.

This captures exactly the two phenomena the paper's evaluation hinges on:

* a per-node ingest cap (each compute node's GPFS client / NIC limits it to
  ~1.5 GB/s regardless of cluster size), and
* an aggregate storage ceiling (all nodes together cannot exceed the
  testbed's ~18.5–20 GB/s), which produces the GFlop/s plateau past 16 nodes.
"""

from __future__ import annotations

import itertools
import math
from dataclasses import dataclass, field
from collections.abc import Iterable, Sequence
from typing import Dict

from repro.sim.kernel import Environment, Event, SimulationError

__all__ = ["Link", "Flow", "FlowNetwork"]


@dataclass(frozen=True)
class Link:
    """A capacitated resource shared by flows (NIC, switch, storage array)."""

    name: str
    capacity: float  # bytes per second

    def __post_init__(self) -> None:
        if self.capacity <= 0 or not math.isfinite(self.capacity):
            raise ValueError(f"link {self.name!r} needs finite positive capacity")


@dataclass
class Flow:
    """A bulk transfer across a set of links."""

    fid: int
    links: tuple[Link, ...]
    remaining: float
    done: Event
    rate: float = 0.0
    started_at: float = 0.0
    total: float = field(default=0.0)

    @property
    def finished(self) -> bool:
        return self.remaining <= 1e-9


class FlowNetwork:
    """Tracks active flows over shared links and completes them fairly."""

    def __init__(self, env: Environment, *, rate_floor: float = 1e-6,
                 time_epsilon: float = 1e-9):
        self.env = env
        self._flows: dict[int, Flow] = {}
        self._ids = itertools.count(1)
        self._last_update = env.now
        self._wakeup: Event | None = None
        self._wakeup_time = math.inf
        self._rate_floor = rate_floor
        self._time_epsilon = time_epsilon
        self.bytes_completed = 0.0

    # -- public API ---------------------------------------------------------

    def transfer(self, links: Sequence[Link], nbytes: float) -> Event:
        """Start a transfer of ``nbytes`` across ``links``; returns its
        completion event (value = the transfer duration)."""
        if nbytes < 0:
            raise ValueError("transfer size must be non-negative")
        done = Event(self.env)
        if nbytes == 0:
            done.succeed(0.0)
            return done
        if not links:
            raise ValueError("a flow must traverse at least one link")
        self._advance()
        flow = Flow(
            fid=next(self._ids),
            links=tuple(links),
            remaining=float(nbytes),
            done=done,
            started_at=self.env.now,
            total=float(nbytes),
        )
        self._flows[flow.fid] = flow
        self._reallocate()
        return done

    def active_flow_count(self) -> int:
        return len(self._flows)

    def link_utilization(self, link: Link) -> float:
        """Instantaneous fraction of ``link`` capacity in use."""
        used = sum(f.rate for f in self._flows.values() if link in f.links)
        return used / link.capacity

    # -- internals ----------------------------------------------------------

    def _advance(self) -> None:
        """Progress remaining bytes of all flows to the current instant."""
        dt = self.env.now - self._last_update
        if dt < 0:
            raise SimulationError("flow network saw time move backwards")
        if dt > 0:
            for flow in self._flows.values():
                flow.remaining -= flow.rate * dt
        self._last_update = self.env.now

    def _reallocate(self) -> None:
        """Recompute max-min fair rates and reschedule the next completion."""
        # Retire flows that have drained.
        finished = [f for f in self._flows.values() if f.finished]
        for flow in finished:
            del self._flows[flow.fid]
            self.bytes_completed += flow.total
            flow.done.succeed(self.env.now - flow.started_at)

        self._compute_rates()

        # Schedule a wakeup at the earliest projected completion.  The
        # delay is floored at a small epsilon so float residue left by
        # _advance can never schedule a wakeup that fails to move time
        # forward (which would spin the simulation at one instant).
        next_completion = math.inf
        for flow in self._flows.values():
            if flow.rate > 0:
                next_completion = min(next_completion, flow.remaining / flow.rate)
        if math.isinf(next_completion):
            self._wakeup_time = math.inf
            self._wakeup = None
            return
        next_completion = max(next_completion, self._time_epsilon)
        when = self.env.now + next_completion
        if self._wakeup is not None and abs(self._wakeup_time - when) < 1e-12:
            return  # keep the existing wakeup
        self._wakeup_time = when
        wakeup = self.env.event()
        self._wakeup = wakeup
        wakeup.succeed(delay=next_completion)
        wakeup.callbacks.append(self._on_wakeup)  # type: ignore[union-attr]

    def _on_wakeup(self, event: Event) -> None:
        if event is not self._wakeup:
            return  # stale wakeup superseded by a reallocation
        self._wakeup = None
        self._advance()
        # Snap float residue: anything this flow would finish within the
        # time epsilon at its current rate counts as done.
        for flow in self._flows.values():
            if flow.rate > 0 and flow.remaining <= flow.rate * self._time_epsilon:
                flow.remaining = 0.0
            elif flow.remaining < self._rate_floor:
                flow.remaining = 0.0
        self._reallocate()

    def _compute_rates(self) -> None:
        """Progressive-filling max-min fair allocation."""
        flows = list(self._flows.values())
        for flow in flows:
            flow.rate = 0.0
        if not flows:
            return
        residual: dict[Link, float] = {}
        counts: dict[Link, int] = {}
        for flow in flows:
            for link in flow.links:
                residual.setdefault(link, link.capacity)
                counts[link] = counts.get(link, 0) + 1
        unfrozen = set(f.fid for f in flows)
        by_id = {f.fid: f for f in flows}
        while unfrozen:
            # Bottleneck link: smallest equal share among links with unfrozen flows.
            best_share = math.inf
            best_link: Link | None = None
            for link, count in counts.items():
                if count <= 0:
                    continue
                share = residual[link] / count
                if share < best_share - 1e-15:
                    best_share = share
                    best_link = link
            if best_link is None:
                break
            # Freeze every unfrozen flow crossing the bottleneck at best_share.
            frozen_now = [
                fid for fid in unfrozen if best_link in by_id[fid].links
            ]
            if not frozen_now:  # pragma: no cover - defensive
                break
            for fid in frozen_now:
                flow = by_id[fid]
                flow.rate = best_share
                unfrozen.discard(fid)
                for link in flow.links:
                    residual[link] -= best_share
                    counts[link] -= 1
        # Guard against float drift producing negative rates.
        for flow in flows:
            if flow.rate < 0:
                flow.rate = 0.0


def fair_rates(link_caps: Iterable[float], flow_links: Sequence[Sequence[int]]) -> list[float]:
    """Pure helper: max-min fair rates for flows given links by index.

    Exposed for property-based testing of the allocation algorithm without
    spinning up an environment.
    """
    caps = list(link_caps)
    links = [Link(name=f"l{i}", capacity=c) for i, c in enumerate(caps)]
    env = Environment()
    net = FlowNetwork(env)
    for idxs in flow_links:
        if not idxs:
            raise ValueError("each flow needs at least one link")
        flow = Flow(
            fid=next(net._ids),
            links=tuple(links[i] for i in idxs),
            remaining=1.0,
            done=Event(env),
        )
        net._flows[flow.fid] = flow
    net._compute_rates()
    return [f.rate for f in net._flows.values()]
