"""Generator-based discrete-event simulation kernel.

Processes are plain Python generators that ``yield`` events; the environment
resumes a process when the event it waits on fires.  The design follows the
classic SimPy architecture but is intentionally small, fully deterministic,
and tuned for the access patterns of this library (many short-lived events,
tie-heavy schedules from synchronized I/O completions).
"""

from __future__ import annotations

import heapq
from collections.abc import Callable, Generator, Iterable
from typing import Any

__all__ = [
    "SimulationError",
    "Interrupt",
    "Event",
    "Timeout",
    "Process",
    "Environment",
    "AllOf",
    "AnyOf",
]


class SimulationError(RuntimeError):
    """Raised for kernel misuse (double trigger, running a dead env, ...)."""


class Interrupt(Exception):
    """Thrown into a process by :meth:`Process.interrupt`."""

    def __init__(self, cause: Any = None):
        super().__init__(cause)
        self.cause = cause


# Event states
_PENDING = 0
_TRIGGERED = 1  # scheduled, not yet processed
_PROCESSED = 2


class Event:
    """A one-shot occurrence with a value and callbacks.

    Events start *pending*; :meth:`succeed` or :meth:`fail` schedules them on
    the environment's queue, and once the environment processes them their
    callbacks run exactly once.
    """

    __slots__ = ("env", "callbacks", "_value", "_state", "_ok", "_defused")

    def __init__(self, env: Environment):
        self.env = env
        self.callbacks: list[Callable[["Event"], None]] | None = []
        self._value: Any = None
        self._state = _PENDING
        self._ok = True
        self._defused = False

    @property
    def triggered(self) -> bool:
        return self._state >= _TRIGGERED

    @property
    def processed(self) -> bool:
        return self._state == _PROCESSED

    @property
    def ok(self) -> bool:
        """True when the event succeeded (valid once triggered)."""
        return self._ok

    @property
    def value(self) -> Any:
        if self._state == _PENDING:
            raise SimulationError("event value read before trigger")
        return self._value

    def succeed(self, value: Any = None, *, delay: float = 0.0, priority: int = 0) -> Event:
        """Trigger successfully, scheduling callbacks after ``delay``."""
        if self._state != _PENDING:
            raise SimulationError("event already triggered")
        self._state = _TRIGGERED
        self._ok = True
        self._value = value
        self.env._schedule(self, delay=delay, priority=priority)
        return self

    def fail(self, exception: BaseException, *, delay: float = 0.0) -> Event:
        """Trigger as failed; waiting processes receive ``exception``."""
        if self._state != _PENDING:
            raise SimulationError("event already triggered")
        if not isinstance(exception, BaseException):
            raise TypeError("fail() needs an exception instance")
        self._state = _TRIGGERED
        self._ok = False
        self._value = exception
        self.env._schedule(self, delay=delay)
        return self

    def _run_callbacks(self) -> None:
        self._state = _PROCESSED
        callbacks, self.callbacks = self.callbacks, None
        for cb in callbacks:  # type: ignore[union-attr]
            cb(self)
        if not self._ok and not self._defused:
            raise self._value  # unhandled failure crashes the simulation

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        state = {_PENDING: "pending", _TRIGGERED: "triggered", _PROCESSED: "processed"}
        return f"<{type(self).__name__} {state[self._state]}>"


class Timeout(Event):
    """An event that fires after a fixed virtual delay."""

    __slots__ = ("delay",)

    def __init__(self, env: Environment, delay: float, value: Any = None):
        if delay < 0:
            raise ValueError(f"negative timeout delay: {delay}")
        super().__init__(env)
        self.delay = delay
        self._state = _TRIGGERED
        self._ok = True
        self._value = value
        env._schedule(self, delay=delay)


class Process(Event):
    """Wraps a generator; finishes (as an event) when the generator returns.

    Inside the generator, ``yield event`` suspends until the event fires;
    the yield expression evaluates to the event's value.  A failed event
    raises its exception inside the generator (which may catch it).
    """

    __slots__ = ("_generator", "_target", "name")

    def __init__(self, env: Environment, generator: Generator, name: str = ""):
        if not hasattr(generator, "send"):
            raise TypeError(f"Process needs a generator, got {type(generator).__name__}")
        super().__init__(env)
        self._generator = generator
        self._target: Event | None = None
        self.name = name or getattr(generator, "__name__", "process")
        init = Event(env)
        init.succeed()
        init.callbacks.append(self._resume)  # type: ignore[union-attr]

    @property
    def is_alive(self) -> bool:
        return self._state == _PENDING

    def interrupt(self, cause: Any = None) -> None:
        """Throw :class:`Interrupt` into the process at the current time."""
        if not self.is_alive:
            raise SimulationError(f"cannot interrupt finished process {self.name}")
        if self._target is self:
            raise SimulationError("process cannot interrupt itself")
        interrupt_event = Event(self.env)
        interrupt_event._defused = True
        interrupt_event.fail(Interrupt(cause))
        # Detach from the currently awaited event, then resume with failure.
        target = self._target
        if target is not None and target.callbacks is not None:
            try:
                target.callbacks.remove(self._resume)
            except ValueError:
                pass
        self._target = None
        interrupt_event.callbacks.append(self._resume)  # type: ignore[union-attr]

    def _resume(self, event: Event) -> None:
        self.env._active_process = self
        self._target = None
        try:
            if event._ok:
                next_event = self._generator.send(event._value)
            else:
                event._defused = True
                next_event = self._generator.throw(event._value)
        except StopIteration as stop:
            self.env._active_process = None
            if self._state == _PENDING:
                self.succeed(stop.value)
            return
        except BaseException as exc:
            self.env._active_process = None
            if self._state == _PENDING:
                self.fail(exc)
                return
            raise
        self.env._active_process = None
        if not isinstance(next_event, Event):
            raise SimulationError(
                f"process {self.name!r} yielded {next_event!r}; processes must yield Events"
            )
        if next_event.env is not self.env:
            raise SimulationError("cannot wait on an event from another environment")
        self._target = next_event
        if next_event.callbacks is None:
            # Already processed: resume immediately (same timestep).
            resume = Event(self.env)
            resume._ok = next_event._ok
            resume._value = next_event._value
            resume._defused = True
            resume._state = _TRIGGERED
            self.env._schedule(resume)
            resume.callbacks.append(self._resume)  # type: ignore[union-attr]
        else:
            next_event.callbacks.append(self._resume)


class Condition(Event):
    """Base for AllOf / AnyOf composite events."""

    __slots__ = ("events", "_pending_count")

    def __init__(self, env: Environment, events: Iterable[Event]):
        super().__init__(env)
        self.events = list(events)
        for ev in self.events:
            if ev.env is not env:
                raise SimulationError("all condition events must share one environment")
        self._pending_count = 0
        for ev in self.events:
            if ev.callbacks is None:
                self._check(ev)
            else:
                self._pending_count += 1
                ev.callbacks.append(self._check)
        if not self.events and self._state == _PENDING:
            self.succeed([])

    def _check(self, event: Event) -> None:  # pragma: no cover - abstract
        raise NotImplementedError


class AllOf(Condition):
    """Fires when every component event has fired; value is the value list."""

    __slots__ = ()

    def _check(self, event: Event) -> None:
        if self._state != _PENDING:
            return
        if not event._ok:
            event._defused = True
            self.fail(event._value)
            return
        if all(ev.processed or ev is event for ev in self.events):
            self.succeed([ev._value for ev in self.events])


class AnyOf(Condition):
    """Fires when the first component event fires; value is (event, value)."""

    __slots__ = ()

    def _check(self, event: Event) -> None:
        if self._state != _PENDING:
            return
        if not event._ok:
            event._defused = True
            self.fail(event._value)
            return
        self.succeed((event, event._value))


class Environment:
    """The event loop: schedules events and advances virtual time."""

    def __init__(self, initial_time: float = 0.0):
        self._now = float(initial_time)
        self._queue: list[tuple[float, int, int, Event]] = []
        self._seq = 0
        self._active_process: Process | None = None

    @property
    def now(self) -> float:
        """Current virtual time in seconds."""
        return self._now

    @property
    def active_process(self) -> Process | None:
        return self._active_process

    def _schedule(self, event: Event, *, delay: float = 0.0, priority: int = 0) -> None:
        self._seq += 1
        heapq.heappush(self._queue, (self._now + delay, priority, self._seq, event))

    # -- public factory helpers -------------------------------------------

    def event(self) -> Event:
        return Event(self)

    def timeout(self, delay: float, value: Any = None) -> Timeout:
        return Timeout(self, delay, value)

    def process(self, generator: Generator, name: str = "") -> Process:
        return Process(self, generator, name=name)

    def all_of(self, events: Iterable[Event]) -> AllOf:
        return AllOf(self, events)

    def any_of(self, events: Iterable[Event]) -> AnyOf:
        return AnyOf(self, events)

    # -- execution ---------------------------------------------------------

    def step(self) -> None:
        """Process the single next event."""
        if not self._queue:
            raise SimulationError("step() on an empty schedule")
        self._now, _, _, event = heapq.heappop(self._queue)
        event._run_callbacks()

    def peek(self) -> float:
        """Time of the next scheduled event, or +inf when idle."""
        return self._queue[0][0] if self._queue else float("inf")

    def run(self, until: float | Event | None = None) -> Any:
        """Run until the queue drains, a deadline passes, or an event fires.

        With an :class:`Event` argument, returns that event's value when it
        fires (raising if it failed).
        """
        if isinstance(until, Event):
            stop = until
            while not stop.processed:
                if not self._queue:
                    raise SimulationError(
                        "simulation ran dry before the awaited event fired (deadlock?)"
                    )
                self.step()
            if not stop._ok:
                raise stop._value
            return stop._value
        deadline = float("inf") if until is None else float(until)
        if deadline < self._now:
            raise ValueError(f"run(until={deadline}) is in the past (now={self._now})")
        while self._queue and self._queue[0][0] <= deadline:
            self.step()
        if deadline != float("inf"):
            self._now = deadline
        return None
