"""DOoC: an out-of-core dataflow middleware for large-scale iterative solvers.

A comprehensive reproduction of Zhou et al., "An Out-of-Core Dataflow
Middleware to Reduce the Cost of Large Scale Iterative Solvers"
(ICPP 2012).  See DESIGN.md for the system inventory, EXPERIMENTS.md for
paper-vs-measured numbers, and the ``examples/`` directory for runnable
entry points.

Top-level convenience re-exports cover the primary public API; subpackages
carry the full surface:

* :mod:`repro.core` — the DOoC engine (arrays, storage, schedulers);
* :mod:`repro.datacutter` — the filter-stream middleware substrate;
* :mod:`repro.spmv` — blocked sparse matrices and iterated-SpMV programs;
* :mod:`repro.lanczos` — in-core and out-of-core eigensolvers;
* :mod:`repro.ci` — configuration-interaction basis combinatorics;
* :mod:`repro.sim` / :mod:`repro.cluster` / :mod:`repro.testbed` — the
  discrete-event SSD-testbed simulator;
* :mod:`repro.models` — calibrated analytic baselines;
* :mod:`repro.experiments` — one runner per paper table/figure.
"""

from repro.core import DOoCEngine, Program
from repro.datacutter import DataBuffer, Filter, Layout, ThreadedRuntime
from repro.faults import FaultPlan, RetryPolicy
from repro.lanczos import OutOfCoreLanczos, lanczos
from repro.spmv import CSRBlock, GridPartition, build_iterated_spmv
from repro.testbed import run_testbed_spmv

__version__ = "1.0.0"

__all__ = [
    "DOoCEngine",
    "Program",
    "DataBuffer",
    "Filter",
    "Layout",
    "ThreadedRuntime",
    "FaultPlan",
    "RetryPolicy",
    "CSRBlock",
    "GridPartition",
    "build_iterated_spmv",
    "OutOfCoreLanczos",
    "lanczos",
    "run_testbed_spmv",
    "__version__",
]
