"""Discrete-event simulation of the SSD-testbed experiments.

Runs the out-of-core iterated SpMV of Section V on the simulated Carver
SSD testbed (:mod:`repro.cluster`) under the two scheduling policies, and
produces the rows of Tables III and IV, the relative-runtime series of
Fig. 6, and the CPU-hour points of Fig. 7 (including the oversubscribed
9-node "star" run).
"""

from repro.testbed.app import TestbedParams, TestbedRow, run_testbed_spmv
from repro.testbed.gantt import simulated_gantt

__all__ = ["TestbedParams", "TestbedRow", "run_testbed_spmv",
           "simulated_gantt"]
