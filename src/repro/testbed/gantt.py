"""ASCII Gantt charts of simulated testbed runs (Fig. 5-style views).

The paper's Fig. 5 explains the policies with Gantt charts; this module
renders the same kind of view from an actual simulated run's trace: ``=``
filesystem reads, ``m`` multiplies/reductions, ``>``/``<`` vector sends
and receives, per compute node.
"""

from __future__ import annotations


from repro.sim.trace import render_gantt
from repro.testbed.app import TestbedParams, run_testbed_spmv

GLYPHS = {"io": "=", "compute": "m", "send": ">", "recv": "<"}


def simulated_gantt(
    nodes: int,
    policy: str,
    *,
    seed: int = 1,
    until_s: float | None = None,
    width: int = 96,
    params: TestbedParams | None = None,
    **run_kwargs,
) -> str:
    """Run a testbed simulation and render its activity timeline.

    ``until_s`` crops the chart to the first N simulated seconds (default:
    roughly the first iteration).
    """
    sink: list = []
    row = run_testbed_spmv(nodes, policy, seed=seed, trace_sink=sink,
                           params=params or TestbedParams(), **run_kwargs)
    trace = sink[0]
    crop = until_s if until_s is not None else row.time_s / 4.0
    intervals = [iv for iv in trace.intervals if iv.start < crop]
    header = (
        f"{policy} policy, {nodes} node(s), first {crop:.0f} s of "
        f"{row.time_s:.0f} s  (= read, m compute, > send, < recv)"
    )
    return header + "\n" + render_gantt(intervals, width=width,
                                        kind_glyphs=GLYPHS)
