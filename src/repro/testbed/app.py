"""Simulated out-of-core iterated SpMV on the SSD testbed.

One run reproduces one row of Table III (``policy="simple"``) or Table IV
(``policy="interleaved"``) — see Section V:

* each node owns a 5x5 arrangement of ~4 GB binary-CSR sub-matrix files
  and re-reads all of them from GPFS every iteration (the working set,
  100 GB/node, dwarfs the 24 GB DRAM);
* **simple** policy: each node performs its local SpMVs (load then
  multiply, no intra-iteration interleaving), a global synchronization,
  then every intermediate sub-vector travels to the row-owner node
  ("all the intermediate results are sent to the node that hosts
  A_{i,0}"), which reduces and redistributes; a second synchronization
  starts the next iteration;
* **interleaved** policy: loads are pipelined through a prefetch window
  and multiplies overlap them; each node *locally aggregates* a row's
  intermediates before communicating one partial per row; reductions and
  redistribution overlap the remaining I/O, and only the inter-iteration
  synchronization (Lanczos reorthogonalization) remains.

Per-(node, iteration) read-bandwidth jitter models the "noticeable
variation in read bandwidth observed by individual compute nodes" on the
shared GPFS; barriers amplify it into straggler time, which is what
separates the two policies' "non-overlapped" columns.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

import numpy as np

from repro.cluster.machine import SimCluster
from repro.cluster.spec import ClusterSpec, carver_ssd_testbed
from repro.faults import FaultPlan, RetryPolicy
from repro.models.testbed import (
    CODEC_MODELS,
    CodecBandwidthModel,
    TestbedWorkload,
    WorksetModel,
)
from repro.sim.kernel import Environment
from repro.sim.primitives import Barrier, Resource
from repro.sim.trace import TraceRecorder
from repro.util.rng import RngTree
from repro.util.units import GB


@dataclass(frozen=True)
class TestbedParams:
    """Simulation knobs (calibration documented in DESIGN.md §5).

    The per-(node, iteration) GPFS bandwidth factor has coefficient of
    variation ``jitter_cv0 + jitter_cv_per_node * nodes``: server-side
    queueing on the shared filesystem makes individual clients' observed
    bandwidth increasingly erratic as more of them hammer it — the paper's
    "noticeable variation in read bandwidth observed by individual compute
    nodes".  Barriers turn that variation into straggler dead time, which
    is the dominant term separating Table III from Table IV.
    """

    __test__ = False  # not a pytest class despite the name

    #: sub-matrix buffers in flight per node (interleaved prefetch window)
    window: int = 4
    #: baseline CV of the per-(node, iteration) bandwidth factor
    jitter_cv0: float = 0.02
    #: CV growth per active client node
    jitter_cv_per_node: float = 0.008
    #: effective point-to-point bandwidth of one vector message
    per_flow_cap_bytes: float = 1.2 * GB
    #: receive-side processing bandwidth for inbound vector buffers
    #: (DataCutter storage-filter path: deserialize, copy, grant); this is
    #: what makes shipping 25 raw intermediates per node (simple policy)
    #: expensive while one aggregated partial per row (interleaved) hides
    #: under I/O
    vector_service_bytes_per_s: float = 0.5 * GB

    def __post_init__(self) -> None:
        if self.window < 1:
            raise ValueError("window must be >= 1")
        if self.jitter_cv0 < 0 or self.jitter_cv_per_node < 0:
            raise ValueError("jitter CVs must be non-negative")
        if self.per_flow_cap_bytes <= 0:
            raise ValueError("per-flow cap must be positive")

    def jitter_cv(self, nodes: int) -> float:
        return self.jitter_cv0 + self.jitter_cv_per_node * nodes


@dataclass(frozen=True)
class TestbedRow:
    """One row of Table III/IV."""

    __test__ = False  # not a pytest class despite the name

    nodes: int
    policy: str
    dimension: int
    nnz: float
    size_bytes: float
    time_s: float
    gflops: float
    read_bw_bytes_per_s: float
    non_overlapped_fraction: float
    cpu_hours_per_iteration: float
    #: transient-I/O retries performed (FaultPlan runs only)
    io_retries: int = 0
    #: faults the plan injected into this run
    faults_injected: int = 0
    #: reads redone as task re-executions after permanent faults
    task_reexecutions: int = 0
    #: nodes permanently lost to ``FaultPlan.node_kill`` entries
    nodes_lost: int = 0
    #: sub-matrix files re-read by buddies reconstructing dead nodes' state
    blocks_reconstructed: int = 0
    #: iteration-boundary checkpoint writes (``checkpoint_every`` runs only)
    checkpoint_writes: int = 0
    #: sub-matrix codec the run was modeled under (see CODEC_MODELS)
    codec: str = "raw"
    #: physical bytes moved through the filesystem for sub-matrix reads
    #: (== logical bytes / codec ratio; raw runs read logical bytes)
    disk_bytes_read: float = 0.0
    #: sub-matrix reads+multiplies elided by workset dropout
    blocks_skipped: int = 0
    #: sweeps actually simulated (< iterations when the workset emptied)
    iterations_run: int = 0


class _Counter:
    """Fires an event once ``target`` arrivals are recorded."""

    def __init__(self, env: Environment, target: int):
        self.env = env
        self.target = target
        self.count = 0
        self.event = env.event()
        if target == 0:
            self.event.succeed()

    def add(self, n: int = 1) -> None:
        self.count += n
        if self.count == self.target:
            self.event.succeed()
        elif self.count > self.target:  # pragma: no cover - defensive
            raise RuntimeError("counter overshot its target")


def run_testbed_spmv(
    nodes: int,
    policy: str = "simple",
    *,
    workload: TestbedWorkload = TestbedWorkload(),
    spec: ClusterSpec | None = None,
    params: TestbedParams = TestbedParams(),
    seed: int = 0,
    oversubscribe: int = 1,
    trace_sink: list | None = None,
    tracer=None,
    faults: FaultPlan | None = None,
    io_retry: RetryPolicy | None = None,
    checkpoint_every: int | None = None,
    detection_s: float = 1.2,
    codec: CodecBandwidthModel | str | None = None,
    workset: WorksetModel | None = None,
) -> TestbedRow:
    """Simulate one testbed run and return its table row.

    ``oversubscribe`` (a perfect square) places that many nodes' worth of
    data on each physical node — the Fig. 7 "star" runs the 36-node matrix
    on 9 nodes with ``oversubscribe=4``.  Pass a list as ``trace_sink`` to
    receive the full :class:`~repro.sim.trace.TraceRecorder` (Gantt data).
    Pass a :class:`repro.obs.Tracer` as ``tracer`` to receive the run's
    timeline in the engine's trace-event schema (sim clock as timestamps),
    ready for ``RunReport``-style Chrome export.

    ``faults`` mirrors the threaded engine's fault model on the simulated
    clock (same :class:`FaultPlan` schema, docs/FAULTS.md): each
    filesystem read is a decision site keyed by its per-node sequence
    number.  A transient fault costs one ``io_retry`` backoff delay and a
    re-draw; a permanent fault costs the exhausted-retries penalty plus a
    full task re-execution (the read is redone once, fault-free — the
    write-once recovery story).  Faults perturb *time only*; the computed
    row differs from a fault-free run solely in ``time_s`` and derived
    columns, never in dimension/nnz.

    ``codec`` applies the compressed-bandwidth model
    (:class:`~repro.models.testbed.CodecBandwidthModel`, or a name from
    ``CODEC_MODELS``) to every sub-matrix read: the filesystem moves
    ``logical / ratio`` bytes, then the node pays the decode time —
    ``effective_bw = 1 / (1 / (ratio * disk_bw) + 1 / decode_bw)``.  The
    row reports the codec and the physical ``disk_bytes_read``.

    ``FaultPlan.node_kill`` entries mirror the engine's permanent node
    loss: when a node's iteration count reaches its kill step, a buddy
    (the next surviving node) takes over its role for the rest of the run
    — the iteration body is parameterized by the *acting* node, so all
    reads, multiplies and sends charge to the buddy.  The takeover pays
    ``detection_s`` of dead time (the failure detector's declaration
    window, the engine's ``dead_after_s``) plus a reconstruction re-read
    of the dead node's sub-matrix working set from the shared filesystem
    (``blocks_reconstructed`` counts those files).  ``checkpoint_every``
    adds an iteration-boundary checkpoint of each node's iterate parts,
    the cost model for the solvers' checkpoint/restart path.

    ``workset`` applies the incremental-iteration dropout model
    (:class:`~repro.models.testbed.WorksetModel`): a frozen grid column's
    sub-matrix files are neither read nor multiplied — mirroring the
    engine's product cache — while reductions and vector traffic are
    unchanged (cached intermediates still feed the sums).  The run
    truncates at the model's fixpoint sweep; the row reports
    ``blocks_skipped`` and ``iterations_run``.
    """
    if policy not in ("simple", "interleaved"):
        raise ValueError(f"unknown policy {policy!r}")
    side = int(round(math.sqrt(nodes)))
    if side * side != nodes:
        raise ValueError(f"node count {nodes} is not a perfect square")
    over_side = int(round(math.sqrt(oversubscribe)))
    if over_side * over_side != oversubscribe:
        raise ValueError(f"oversubscribe {oversubscribe} is not a perfect square")

    if spec is None:
        spec = carver_ssd_testbed(compute_nodes=max(nodes, 1))
    env = Environment()
    trace = TraceRecorder(enabled=True)
    rng = RngTree(seed)
    cluster = SimCluster(
        env, spec, rng=rng, trace=trace, nodes_in_use=nodes,
        vector_service_bytes_per_s=params.vector_service_bytes_per_s,
    )

    # Per-node workload (scaled when oversubscribed).
    local_side = workload.local_grid_side * over_side      # sub-rows per node
    subs_per_node = local_side * local_side                # files per node/iter
    sub_bytes = workload.submatrix_bytes
    vec_bytes = workload.subvector_bytes
    mult_flops = 2.0 * workload.nnz_per_node / workload.submatrices_per_node
    iterations = workload.iterations
    cores = spec.node.cores

    # Workset dropout: per-iteration active local grid columns.  A frozen
    # column's sub-matrices (k with k % local_side in the frozen set) are
    # neither read nor multiplied; the run stops at the model's fixpoint.
    if workset is not None:
        schedule = [workset.active_columns(it, local_side)
                    for it in range(iterations)]
        eff_iterations = next(
            (i for i, cols in enumerate(schedule) if not cols), iterations)
        schedule = schedule[:eff_iterations]
    else:
        schedule = [list(range(local_side)) for _ in range(iterations)]
        eff_iterations = iterations
    active_ks_by_it = [
        [k for k in range(subs_per_node) if (k % local_side) in set(cols)]
        for cols in schedule
    ]
    if eff_iterations < 1:
        raise ValueError("workset model freezes everything before sweep 0")

    barrier = Barrier(env, nodes)
    jitter_rng = rng.child("node-iter-jitter")
    cv = params.jitter_cv(nodes)
    sigma2 = math.log1p(cv * cv) if cv > 0 else 0.0

    def phase_factor() -> float:
        if cv <= 0:
            return 1.0
        return float(jitter_rng.lognormal(mean=-sigma2 / 2,
                                          sigma=math.sqrt(sigma2)))

    def owner_of(node: int) -> int:
        """Row-owner: first node of the node's grid row."""
        return (node // side) * side

    def column_nodes(node: int) -> list[int]:
        """Nodes of the node-column matching this owner's node-row."""
        row_i = node // side
        return [r * side + row_i for r in range(side)]

    # (iteration, owner) -> arrivals of reduction inputs
    reduce_counters: dict[tuple[int, int], _Counter] = {}
    inputs_per_owner = {
        # every raw intermediate from the other nodes of the row
        "simple": subs_per_node * (side - 1),
        # one locally-aggregated partial per sub-row per node (owner included)
        "interleaved": local_side * side,
    }[policy]
    for it in range(eff_iterations):
        for owner in range(0, nodes, side):
            reduce_counters[(it, owner)] = _Counter(env, inputs_per_owner)

    flow_cap = params.per_flow_cap_bytes

    if codec is None:
        codec = CODEC_MODELS["raw"]
    elif isinstance(codec, str):
        try:
            codec = CODEC_MODELS[codec]
        except KeyError:
            raise ValueError(
                f"unknown codec model {codec!r}: have {sorted(CODEC_MODELS)}"
            ) from None
    model = codec
    io_totals = {"disk_bytes_read": 0.0}

    def read_submatrix(node: int, nbytes: float, label: str):
        """One sub-matrix filesystem read under the codec model."""
        physical = model.physical_bytes(nbytes)
        io_totals["disk_bytes_read"] += physical
        yield cluster.fs_read(node, physical, label=label)
        decode = model.decode_seconds(nbytes)
        if decode > 0.0:
            yield env.timeout(decode)

    # Fault mirror: same decision schema as the engine, on the sim clock.
    inject = faults is not None and faults.enabled
    retry = io_retry if io_retry is not None else RetryPolicy()
    fault_counts = {"io_retries": 0, "faults_injected": 0,
                    "task_reexecutions": 0, "nodes_lost": 0,
                    "blocks_reconstructed": 0, "checkpoint_writes": 0,
                    "blocks_skipped": 0}
    read_seq = [0] * nodes  # per-node read sequence number = decision site

    # Node-loss mirror: logical role -> physical executor.  A takeover
    # re-points the role at a buddy; the topology (row owners, columns)
    # stays keyed by the logical node.
    kill_at = dict(faults.node_kill) if faults is not None else {}
    if checkpoint_every is not None and checkpoint_every < 1:
        raise ValueError("checkpoint_every must be >= 1")
    acting = list(range(nodes))

    def buddy_of(node: int) -> int:
        b = (node + 1) % nodes
        while b in kill_at and b != node:
            b = (b + 1) % nodes
        if b == node:
            from repro.core.errors import NodeLostError
            raise NodeLostError(
                f"node {node} died with no survivor to take over",
                node=node)
        return b

    def takeover(node: int, it: int):
        """Detection delay + reconstruction re-read, then re-point.

        Only the dead node's *remaining working set* is re-read: a grid
        column the workset model froze before the kill will never be
        multiplied again, so its sub-matrix files are not reconstructed
        — converged (dropped) work is never redone.  Dropout is
        monotone in the model, so the columns active at the kill sweep
        are exactly the union still needed by every later sweep."""
        buddy = buddy_of(node)
        fault_counts["nodes_lost"] += 1
        yield env.timeout(detection_s)
        needed = len(active_ks_by_it[it]) if it < eff_iterations \
            else subs_per_node
        for _ in range(needed):
            yield from read_submatrix(buddy, sub_bytes, "reconstruct")
        fault_counts["blocks_reconstructed"] += needed
        acting[node] = buddy

    def maybe_die(node: int, it: int):
        if kill_at.get(node) == it and acting[node] == node:
            yield from takeover(node, it)

    def maybe_checkpoint(node: int, it: int):
        """Iteration-boundary checkpoint of this role's iterate parts.

        Modeled as a shared-filesystem transfer of the local sub-vectors
        (GPFS read/write bandwidth is symmetric in this model)."""
        if checkpoint_every is None or (it + 1) % checkpoint_every:
            return
        yield cluster.fs_read(acting[node], workload.checkpoint_bytes,
                              label="ckpt")
        fault_counts["checkpoint_writes"] += 1

    def fs_read(node: int, nbytes: float, label: str):
        """Codec-modeled ``fs_read`` with FaultPlan-driven retry/re-execution."""
        if not inject:
            yield from read_submatrix(node, nbytes, label)
            return
        block = read_seq[node]
        read_seq[node] += 1
        for attempt in range(1, retry.attempts + 1):
            kind = faults.io_fault(node, "load", label, block, attempt)
            if kind is None:
                yield from read_submatrix(node, nbytes, label)
                return
            fault_counts["faults_injected"] += 1
            if kind == "permanent":
                break  # retrying cannot help; fall through to re-execution
            if attempt < retry.attempts:
                fault_counts["io_retries"] += 1
                yield env.timeout(retry.delay(attempt))
        # Retries exhausted (or permanent): the scheduler re-executes the
        # task — pay the remaining backoff as the failure-detection
        # penalty, then redo the read fault-free (write-once makes the
        # re-read safe; a rerouted attempt reads from a healthy path).
        fault_counts["task_reexecutions"] += 1
        yield env.timeout(retry.delay(retry.attempts))
        yield from read_submatrix(node, nbytes, label)

    def send_vectors(src: int, dst: int, count: int, it: int, label: str):
        """Transfer ``count`` sub-vectors; returns when all arrive."""
        events = [
            cluster.send(src, dst, vec_bytes, label=label, flow_cap=flow_cap,
                         via_service=True)
            for _ in range(count)
        ]
        yield env.all_of(events)

    def node_simple(node: int):
        for it in range(eff_iterations):
            yield from maybe_die(node, it)
            act = acting[node]
            factor = phase_factor()
            active_subs = len(active_ks_by_it[it])
            fault_counts["blocks_skipped"] += subs_per_node - active_subs
            # Phase 1: local SpMVs, load then multiply (no interleaving).
            for _ in range(active_subs):
                yield from fs_read(act, sub_bytes * factor, "sub")
                yield env.process(cluster.compute(
                    act, mult_flops, cores=cores, label="mult"))
            yield barrier.wait()
            # Phase 2: ship raw intermediates to the row owner.
            owner = owner_of(node)
            counter = reduce_counters[(it, owner)]
            if node != owner:
                yield env.process(send_vectors(
                    act, acting[owner], subs_per_node, it, "intermediate"))
                counter.add(subs_per_node)
            else:
                # Owner: wait for everyone, reduce, redistribute.
                yield counter.event
                reduce_flops = (local_side * vec_bytes / 8.0) * (
                    local_side * side - 1)
                yield env.process(cluster.compute(
                    act, reduce_flops, cores=cores, label="reduce"))
                sends = []
                for dst in column_nodes(node):
                    sends.append(env.process(send_vectors(
                        act, acting[dst], local_side, it, "xnew")))
                yield env.all_of(sends)
            yield from maybe_checkpoint(node, it)
            yield barrier.wait()

    def node_interleaved(node: int):
        owner = owner_of(node)
        prefetched = 0  # sub-matrices of the upcoming iteration already read
        for it in range(eff_iterations):
            was_acting = acting[node]
            yield from maybe_die(node, it)
            act = acting[node]
            if act != was_acting:
                prefetched = 0  # prefetched buffers died with the node
            factor = phase_factor()
            active_ks = active_ks_by_it[it]
            row_target = len(schedule[it])  # active columns per sub-row
            fault_counts["blocks_skipped"] += subs_per_node - len(active_ks)
            slots = Resource(env, capacity=params.window)
            counter = reduce_counters[(it, owner)]
            row_done = [_Counter(env, row_target) for _ in range(local_side)]
            work_done = _Counter(env, len(active_ks))

            def mult_then_rowsum(req, k, factor=factor, counter=counter,
                                 row_done=row_done, work_done=work_done,
                                 act=act, row_target=row_target):
                yield env.process(cluster.compute(
                    act, mult_flops, cores=cores, label="mult"))
                slots.release(req)
                u_loc = k // local_side
                row_done[u_loc].add()
                if row_done[u_loc].count == row_target:
                    # Local aggregation: one partial sub-vector per row.
                    psum_flops = (vec_bytes / 8.0) * (local_side - 1)
                    yield env.process(cluster.compute(
                        act, psum_flops, cores=cores, label="psum"))
                    if node != owner:
                        yield env.process(send_vectors(
                            act, acting[owner], 1, it, "partial"))
                    counter.add()
                work_done.add()

            def load_pipeline(skip: int, factor=factor, act=act,
                              active_ks=active_ks):
                # Prefetched sub-matrices are already in DRAM: their mults
                # run straight away.
                for j, k in enumerate(active_ks):
                    req = yield slots.request()
                    if j >= skip:
                        yield from fs_read(act, sub_bytes * factor, "sub")
                    env.process(mult_then_rowsum(req, k))

            yield env.process(load_pipeline(prefetched))
            yield work_done.event
            if node == owner:
                # Own partials counted in `counter` too; finish the rows.
                yield counter.event
                final_flops = (local_side * vec_bytes / 8.0) * (side - 1)
                yield env.process(cluster.compute(
                    act, final_flops, cores=cores, label="reduce"))
                sends = []
                for dst in column_nodes(node):
                    sends.append(env.process(send_vectors(
                        act, acting[dst], local_side, it, "xnew")))
                yield env.all_of(sends)
            yield from maybe_checkpoint(node, it)
            # The DAG execution model lets the storage layer warm the next
            # iteration's sub-matrices (up to the buffer window) while this
            # node waits for the others at the inter-iteration
            # synchronization — the multiplies still wait for the reduced
            # vectors behind the barrier.
            prefetched = 0
            if it + 1 < eff_iterations:
                next_factor = phase_factor()
                next_active = len(active_ks_by_it[it + 1])

                def prefetch_next(nf=next_factor, act=act,
                                  next_active=next_active):
                    got = 0
                    for _ in range(min(params.window, next_active)):
                        yield from fs_read(act, sub_bytes * nf, "prefetch")
                        got += 1
                    return got

                pf = env.process(prefetch_next())
                # The only synchronization: between iterations (reorth).
                yield barrier.wait()
                prefetched = yield pf
            else:
                yield barrier.wait()

    body = node_simple if policy == "simple" else node_interleaved
    procs = [env.process(body(n), name=f"node{n}") for n in range(nodes)]
    env.run(env.all_of(procs))

    total_time = env.now
    reads_scheduled = nodes * sum(len(ks) for ks in active_ks_by_it)
    total_bytes = reads_scheduled * sub_bytes
    # The paper extracts I/O time from per-node application logs: use the
    # mean per-node filesystem-busy time, not the cross-node union (a node
    # waiting at a barrier is NOT reading, even if some straggler is).
    io_busy_mean = float(np.mean([
        trace.busy_time(lane=cluster.nodes[i].name, kind="io")
        for i in range(nodes)
    ]))
    dimension = workload.rows_per_node * side * over_side
    nnz = workload.nnz_per_node * nodes * oversubscribe
    # Multiply flops actually performed (identical to 2 * nnz * iterations
    # when nothing is skipped and no sweep is truncated).
    flops = mult_flops * reads_scheduled
    row = TestbedRow(
        nodes=nodes,
        policy=policy,
        dimension=dimension,
        nnz=nnz,
        size_bytes=nodes * oversubscribe * workload.bytes_per_node,
        time_s=total_time,
        gflops=flops / total_time / 1e9,
        read_bw_bytes_per_s=total_bytes / io_busy_mean if io_busy_mean else 0.0,
        non_overlapped_fraction=max(0.0, 1.0 - io_busy_mean / total_time),
        cpu_hours_per_iteration=(
            nodes * spec.node.cores * (total_time / eff_iterations) / 3600.0),
        io_retries=fault_counts["io_retries"],
        faults_injected=fault_counts["faults_injected"],
        task_reexecutions=fault_counts["task_reexecutions"],
        nodes_lost=fault_counts["nodes_lost"],
        blocks_reconstructed=fault_counts["blocks_reconstructed"],
        checkpoint_writes=fault_counts["checkpoint_writes"],
        codec=model.name,
        disk_bytes_read=io_totals["disk_bytes_read"],
        blocks_skipped=fault_counts["blocks_skipped"],
        iterations_run=eff_iterations,
    )
    if trace_sink is not None:
        trace_sink.append(trace)
    if tracer is not None:
        from repro.obs import events_from_sim_trace
        tracer.ingest(events_from_sim_trace(trace))
    return row
