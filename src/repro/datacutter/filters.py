"""Filter base class and the execution context handed to instances.

Writing an application means subclassing :class:`Filter`, declaring input
and output port names, and implementing :meth:`Filter.process` — "the key
job left to application developers is writing the filter functions and
determining the filter and stream layout".
"""

from __future__ import annotations

from collections.abc import Sequence
from typing import TYPE_CHECKING

from repro.datacutter.buffers import END_OF_STREAM, DataBuffer

if TYPE_CHECKING:  # pragma: no cover
    from repro.datacutter.runtime import _InstanceRuntime


class FilterContext:
    """The runtime services visible to one filter instance."""

    def __init__(self, runtime: _InstanceRuntime):
        self._rt = runtime

    @property
    def name(self) -> str:
        """Filter name from the layout."""
        return self._rt.spec.name

    @property
    def instance(self) -> int:
        """This copy's index in [0, instances)."""
        return self._rt.instance

    @property
    def instances(self) -> int:
        return self._rt.spec.instances

    @property
    def node(self) -> int:
        """Logical node this instance is placed on."""
        return self._rt.spec.node_of(self._rt.instance)

    def read(self, port: str, timeout: float | None = None):
        """Next buffer on ``port`` (blocking); END_OF_STREAM when drained."""
        return self._rt.read(port, timeout)

    def read_any(self, ports: Sequence[str], timeout: float | None = None):
        """Wait for a buffer on any of ``ports``.

        Returns ``(port, buffer)``; ``(None, END_OF_STREAM)`` once every
        listed port has drained.  This is how service filters (the DOoC
        storage filter) multiplex many bidirectional links.
        """
        return self._rt.read_any(ports, timeout)

    def write(self, port: str, buffer: DataBuffer) -> None:
        """Emit a buffer downstream; blocks on backpressure."""
        self._rt.write(port, buffer)

    def close(self, port: str) -> None:
        """Signal that this instance will write no more on ``port``."""
        self._rt.close_output(port)

    @property
    def stop_requested(self) -> bool:
        """True once the runtime asked filters to wind down."""
        return self._rt.stop_requested()


class Filter:
    """Base class for application components.

    Subclasses set ``inputs`` / ``outputs`` (tuples of port names) and
    implement :meth:`process`.  ``init`` and ``finalize`` bracket the
    instance's lifetime.  A filter is *stateless* (safe to replicate) only
    if the author marks it so in the layout.
    """

    inputs: tuple[str, ...] = ()
    outputs: tuple[str, ...] = ()

    def init(self, ctx: FilterContext) -> None:
        """One-time setup before processing starts."""

    def process(self, ctx: FilterContext) -> None:
        """Main body: read buffers, compute, write buffers.

        Returning ends the instance; its remaining open output ports are
        closed automatically.
        """
        raise NotImplementedError

    def finalize(self, ctx: FilterContext) -> None:
        """One-time teardown after process() returns (even on error)."""


class FunctionFilter(Filter):
    """Adapter turning a per-buffer function into a 1-in/1-out filter.

    The function receives each payload from ``in`` and its return value is
    forwarded on ``out`` (None return values are dropped).
    """

    inputs = ("in",)
    outputs = ("out",)

    def __init__(self, fn, *, meta_through: bool = True):
        self.fn = fn
        self.meta_through = meta_through

    def process(self, ctx: FilterContext) -> None:
        while True:
            buf = ctx.read("in")
            if buf is END_OF_STREAM:
                return
            result = self.fn(buf.payload)
            if result is None:
                continue
            meta = buf.meta if self.meta_through else {}
            ctx.write("out", DataBuffer(result, meta))
