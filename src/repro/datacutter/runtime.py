"""Threaded execution of layouts.

Each filter instance runs on its own OS thread; each (stream, consumer
instance) pair is a bounded FIFO *channel* guarded by the consumer's
condition variable.  Writers block when a channel is full (credit-based
backpressure), readers block when all their channels are empty.  A stream
reaches end-of-stream at a consumer once every producer instance has closed
it and the channel has drained.

Threads suit this middleware's workload: filters spend their time in file
I/O and NumPy kernels, both of which release the GIL, so I/O genuinely
overlaps computation — the property the paper's out-of-core pipeline relies
on.
"""

from __future__ import annotations

import itertools
import threading
import time
from collections import deque
from collections.abc import Sequence

from repro.datacutter.buffers import END_OF_STREAM, DataBuffer
from repro.datacutter.errors import FilterError, LayoutError, StreamClosedError
from repro.datacutter.filters import Filter, FilterContext
from repro.datacutter.layout import DistributionPolicy, Layout, StreamSpec

_POLL_S = 0.05  # wait slice so blocked threads can observe runtime failure


class _Channel:
    """Bounded FIFO for one stream arriving at one consumer instance."""

    __slots__ = ("stream", "cond", "items", "capacity", "producers_open",
                 "buffers_in", "bytes_in")

    def __init__(self, stream: StreamSpec, cond: threading.Condition, producers: int):
        self.stream = stream
        self.cond = cond  # the consumer instance's condition
        self.items: deque[DataBuffer] = deque()
        self.capacity = stream.capacity
        self.producers_open = producers
        self.buffers_in = 0
        self.bytes_in = 0

    @property
    def at_eos(self) -> bool:
        return self.producers_open == 0 and not self.items


class _StreamWriter:
    """Producer-side handle distributing buffers over consumer channels."""

    def __init__(self, stream: StreamSpec, channels: list[_Channel], runtime: ThreadedRuntime):
        self.stream = stream
        self.channels = channels
        self.runtime = runtime
        self._rr = itertools.count()

    def _targets(self, buffer: DataBuffer) -> list[_Channel]:
        policy = self.stream.policy
        n = len(self.channels)
        if policy is DistributionPolicy.BROADCAST:
            return self.channels
        if policy is DistributionPolicy.ROUND_ROBIN:
            return [self.channels[next(self._rr) % n]]
        if policy is DistributionPolicy.HASH:
            key = buffer.meta.get(self.stream.hash_key)
            if key is None:
                raise StreamClosedError(
                    f"stream {self.stream.name!r}: buffer lacks hash key "
                    f"{self.stream.hash_key!r}"
                )
            return [self.channels[hash(key) % n]]
        # DIRECTED
        dest = buffer.meta.get("__dest__")
        if dest is None or not 0 <= int(dest) < n:
            raise StreamClosedError(
                f"stream {self.stream.name!r}: DIRECTED buffer needs meta "
                f"'__dest__' in [0, {n}), got {dest!r}"
            )
        return [self.channels[int(dest)]]

    def write(self, buffer: DataBuffer) -> None:
        for channel in self._targets(buffer):
            with channel.cond:
                while len(channel.items) >= channel.capacity:
                    if self.runtime._failed.is_set():
                        raise StreamClosedError(
                            f"runtime failed while writing {self.stream.name!r}"
                        )
                    channel.cond.wait(_POLL_S)
                channel.items.append(buffer)
                channel.buffers_in += 1
                channel.bytes_in += buffer.nbytes
                channel.cond.notify_all()

    def close(self) -> None:
        for channel in self.channels:
            with channel.cond:
                channel.producers_open -= 1
                channel.cond.notify_all()


class _InstanceRuntime:
    """Everything one filter instance's thread needs."""

    def __init__(self, runtime: ThreadedRuntime, spec, instance: int, filt: Filter):
        self.runtime = runtime
        self.spec = spec
        self.instance = instance
        self.filter = filt
        self.cond = threading.Condition()
        # port -> channels feeding it (several streams may merge on a port)
        self.in_channels: dict[str, list[_Channel]] = {}
        # port -> writers fanning out of it
        self.out_writers: dict[str, list[_StreamWriter]] = {}
        self._closed_ports: set[str] = set()
        self._read_rotation: dict[str, int] = {}

    # -- reading ------------------------------------------------------------

    def _try_pop(self, port: str) -> DataBuffer | None:
        """Pop from one of the port's channels (rotating), or None."""
        channels = self.in_channels[port]
        start = self._read_rotation.get(port, 0)
        for k in range(len(channels)):
            channel = channels[(start + k) % len(channels)]
            if channel.items:
                self._read_rotation[port] = (start + k + 1) % len(channels)
                item = channel.items.popleft()
                channel.cond.notify_all()
                return item
        return None

    def _port_eos(self, port: str) -> bool:
        return all(ch.at_eos for ch in self.in_channels[port])

    def read(self, port: str, timeout: float | None = None):
        if port not in self.in_channels:
            if port in self.filter.inputs:
                return END_OF_STREAM  # declared but unconnected: empty stream
            raise LayoutError(f"filter {self.spec.name!r} has no input port {port!r}")
        deadline = None if timeout is None else time.monotonic() + timeout
        with self.cond:
            while True:
                item = self._try_pop(port)
                if item is not None:
                    return item
                if self._port_eos(port):
                    return END_OF_STREAM
                if self.runtime._failed.is_set():
                    raise StreamClosedError("runtime failed while reading")
                if deadline is not None and time.monotonic() >= deadline:
                    raise TimeoutError(f"read({port!r}) timed out")
                self.cond.wait(_POLL_S)

    def read_any(self, ports: Sequence[str], timeout: float | None = None):
        for port in ports:
            if port not in self.in_channels and port not in self.filter.inputs:
                raise LayoutError(
                    f"filter {self.spec.name!r} has no input port {port!r}"
                )
        live = [p for p in ports if p in self.in_channels]
        if not live:
            return None, END_OF_STREAM
        deadline = None if timeout is None else time.monotonic() + timeout
        with self.cond:
            while True:
                for port in live:
                    item = self._try_pop(port)
                    if item is not None:
                        return port, item
                if all(self._port_eos(p) for p in live):
                    return None, END_OF_STREAM
                if self.runtime._failed.is_set():
                    raise StreamClosedError("runtime failed while reading")
                if deadline is not None and time.monotonic() >= deadline:
                    raise TimeoutError(f"read_any({ports!r}) timed out")
                self.cond.wait(_POLL_S)

    # -- writing ------------------------------------------------------------

    def write(self, port: str, buffer: DataBuffer) -> None:
        if not isinstance(buffer, DataBuffer):
            raise TypeError(f"write() needs a DataBuffer, got {type(buffer).__name__}")
        if port in self._closed_ports:
            raise StreamClosedError(
                f"filter {self.spec.name!r}#{self.instance} wrote on closed "
                f"port {port!r}"
            )
        writers = self.out_writers.get(port)
        if writers is None:
            if port in self.filter.outputs:
                return  # unconnected output: discard (sink-less port)
            raise LayoutError(f"filter {self.spec.name!r} has no output port {port!r}")
        for writer in writers:
            writer.write(buffer)

    def close_output(self, port: str) -> None:
        if port in self._closed_ports:
            return
        self._closed_ports.add(port)
        for writer in self.out_writers.get(port, []):
            writer.close()

    def close_all_outputs(self) -> None:
        for port in list(self.out_writers):
            self.close_output(port)

    def stop_requested(self) -> bool:
        return self.runtime._stop.is_set() or self.runtime._failed.is_set()


class ThreadedRuntime:
    """Runs a :class:`~repro.datacutter.layout.Layout` on OS threads."""

    def __init__(self, layout: Layout, *, lock_recorder=None):
        layout.validate()
        for stream in layout.streams.values():
            if stream.src == stream.dst:
                raise LayoutError(
                    f"stream {stream.name!r} is a self-loop; split the filter "
                    "into two stages instead"
                )
        self.layout = layout
        if lock_recorder is None:
            # Function-level import: repro.analysis is lazy, but its checker
            # modules reach back into repro.core, which imports this module.
            from repro.analysis import checkers_enabled
            if checkers_enabled():
                from repro.analysis.lockorder import LockOrderRecorder
                lock_recorder = LockOrderRecorder()
        self.lock_recorder = lock_recorder
        self._failed = threading.Event()
        self._stop = threading.Event()
        self._errors: list[FilterError] = []
        self._errors_lock = threading.Lock()
        self._threads: list[threading.Thread] = []
        self.instances: dict[str, list[_InstanceRuntime]] = {}
        self._build()

    def _build(self) -> None:
        # 1. instantiate filters; wrap each instance's condition *before*
        #    step 2 so every channel captures the recording proxy
        for name, spec in self.layout.filters.items():
            insts = [
                _InstanceRuntime(self, spec, i, spec.factory())
                for i in range(spec.instances)
            ]
            if self.lock_recorder is not None:
                for inst in insts:
                    inst.cond = self.lock_recorder.wrap_condition(
                        inst.cond, f"{name}#{inst.instance}.cond")
            self.instances[name] = insts
        # 2. materialize channels per (stream, consumer instance)
        for stream in self.layout.streams.values():
            producers = self.layout.filters[stream.src].instances
            consumers = self.instances[stream.dst]
            channels = []
            for consumer in consumers:
                channel = _Channel(stream, consumer.cond, producers)
                consumer.in_channels.setdefault(stream.dst_port, []).append(channel)
                channels.append(channel)
            for producer in self.instances[stream.src]:
                writer = _StreamWriter(stream, channels, self)
                producer.out_writers.setdefault(stream.src_port, []).append(writer)

    # -- execution ------------------------------------------------------------

    def _thread_body(self, inst: _InstanceRuntime) -> None:
        ctx = FilterContext(inst)
        try:
            inst.filter.init(ctx)
            inst.filter.process(ctx)
        except BaseException as exc:  # noqa: BLE001 - must not kill the runtime silently
            with self._errors_lock:
                self._errors.append(FilterError(inst.spec.name, inst.instance, exc))
            self._failed.set()
            self._wake_all()
        finally:
            try:
                inst.filter.finalize(ctx)
            except BaseException as exc:  # noqa: BLE001
                with self._errors_lock:
                    self._errors.append(FilterError(inst.spec.name, inst.instance, exc))
                self._failed.set()
            inst.close_all_outputs()
            self._wake_all()

    def _wake_all(self) -> None:
        for insts in self.instances.values():
            for inst in insts:
                with inst.cond:
                    inst.cond.notify_all()

    def start(self) -> None:
        if self._threads:
            raise RuntimeError("runtime already started")
        for name, insts in self.instances.items():
            for inst in insts:
                thread = threading.Thread(
                    target=self._thread_body,
                    args=(inst,),
                    name=f"dc-{name}#{inst.instance}",
                    daemon=True,
                )
                self._threads.append(thread)
        for thread in self._threads:
            thread.start()

    def join(self, timeout: float | None = None) -> None:
        deadline = None if timeout is None else time.monotonic() + timeout
        for thread in self._threads:
            remaining = None
            if deadline is not None:
                remaining = max(deadline - time.monotonic(), 0.0)
            thread.join(remaining)
            if thread.is_alive():
                self._stop.set()
                self._failed.set()
                self._wake_all()
                if self.lock_recorder is not None:
                    # A recorded ordering cycle is a better diagnosis than a
                    # bare timeout: name the deadlock if we saw one.
                    self.lock_recorder.check()
                raise TimeoutError(
                    f"filter thread {thread.name} still running after "
                    f"{timeout} s (possible stream deadlock)"
                )
        if self._errors:
            raise self._errors[0]
        if self.lock_recorder is not None:
            self.lock_recorder.check()

    def run(self, timeout: float | None = None) -> None:
        """start() + join(); the normal entry point."""
        self.start()
        self.join(timeout)

    # -- introspection ----------------------------------------------------------

    def stream_stats(self) -> dict[str, tuple[int, int]]:
        """Per-stream (buffers, bytes) delivered, summed over consumers."""
        stats: dict[str, tuple[int, int]] = {}
        for insts in self.instances.values():
            for inst in insts:
                for channels in inst.in_channels.values():
                    for ch in channels:
                        b, y = stats.get(ch.stream.name, (0, 0))
                        stats[ch.stream.name] = (b + ch.buffers_in, y + ch.bytes_in)
        return stats
