"""Untyped data buffers flowing along streams.

DataCutter moves *untyped buffers* to minimize system overheads; we keep the
same contract: a payload the middleware never interprets, plus a small
metadata dict used for routing (hash distribution) and bookkeeping, plus a
byte-size estimate used for flow-control accounting.
"""

from __future__ import annotations

from collections.abc import Mapping
from typing import Any

import numpy as np


class _EndOfStream:
    """Sentinel marking stream termination; singleton, falsy."""

    _instance: _EndOfStream | None = None

    def __new__(cls) -> _EndOfStream:
        if cls._instance is None:
            cls._instance = super().__new__(cls)
        return cls._instance

    def __bool__(self) -> bool:
        return False

    def __repr__(self) -> str:
        return "END_OF_STREAM"


END_OF_STREAM = _EndOfStream()


def _estimate_nbytes(payload: Any) -> int:
    """Best-effort size estimate used by stream credit accounting."""
    if payload is None:
        return 0
    if isinstance(payload, np.ndarray):
        return int(payload.nbytes)
    if isinstance(payload, (bytes, bytearray, memoryview)):
        return len(payload)
    if isinstance(payload, str):
        return len(payload.encode())
    if isinstance(payload, (list, tuple)):
        return sum(_estimate_nbytes(x) for x in payload)
    if isinstance(payload, Mapping):
        return sum(_estimate_nbytes(v) for v in payload.values())
    return 64  # opaque object: charge a nominal cost


class DataBuffer:
    """One unit of data on a stream.

    ``payload`` is opaque to the middleware.  ``meta`` carries routing keys
    and application tags.  ``nbytes`` defaults to an estimate of the payload
    size and is what bounded streams account against.
    """

    __slots__ = ("payload", "meta", "nbytes")

    def __init__(
        self,
        payload: Any,
        meta: dict[str, Any] | None = None,
        nbytes: int | None = None,
    ):
        self.payload = payload
        self.meta = dict(meta) if meta else {}
        self.nbytes = _estimate_nbytes(payload) if nbytes is None else int(nbytes)
        if self.nbytes < 0:
            raise ValueError("nbytes must be non-negative")

    def tagged(self, **meta: Any) -> DataBuffer:
        """A shallow copy with extra metadata (payload shared)."""
        merged = dict(self.meta)
        merged.update(meta)
        return DataBuffer(self.payload, merged, nbytes=self.nbytes)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        kind = type(self.payload).__name__
        return f"DataBuffer({kind}, {self.nbytes} B, meta={self.meta})"
