"""Exception hierarchy for the filter-stream middleware."""


class DataCutterError(RuntimeError):
    """Base class for all middleware errors."""


class LayoutError(DataCutterError):
    """The layout is malformed (unknown ports, duplicate filters, ...)."""


class StreamClosedError(DataCutterError):
    """A write was attempted on a stream whose consumers all finished."""


class FilterError(DataCutterError):
    """A filter raised; wraps the original exception with filter identity."""

    def __init__(self, filter_name: str, instance: int, cause: BaseException):
        super().__init__(f"filter {filter_name!r}#{instance} failed: {cause!r}")
        self.filter_name = filter_name
        self.instance = instance
        self.cause = cause
