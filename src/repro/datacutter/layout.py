"""Layouts: the filter ontology of an application.

A layout names a set of filters (with instance counts and logical node
placements) and the streams connecting their ports, mirroring DataCutter's
"set of application tasks, streams, and the connections required for the
computation".
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from collections.abc import Callable

from repro.datacutter.errors import LayoutError
from repro.datacutter.filters import Filter


class DistributionPolicy(enum.Enum):
    """How buffers written on a stream are spread over consumer copies."""

    ROUND_ROBIN = "round_robin"   # producer-local rotation (data parallelism)
    BROADCAST = "broadcast"       # every consumer instance gets a copy
    HASH = "hash"                 # meta[key] % instances picks the consumer
    DIRECTED = "directed"         # meta['__dest__'] names the instance


@dataclass(frozen=True)
class FilterSpec:
    """A filter declaration within a layout."""

    name: str
    factory: Callable[[], Filter]
    instances: int = 1
    replicable: bool = False
    #: logical node of each instance (len == instances); defaults to 0s.
    placement: tuple[int, ...] = ()

    def __post_init__(self) -> None:
        if self.instances < 1:
            raise LayoutError(f"filter {self.name!r} needs >= 1 instance")
        if self.instances > 1 and not self.replicable:
            raise LayoutError(
                f"filter {self.name!r} has {self.instances} instances but is "
                "not replicable; only stateless filters may be copied"
            )
        if self.placement and len(self.placement) != self.instances:
            raise LayoutError(
                f"filter {self.name!r}: placement length {len(self.placement)} "
                f"!= instances {self.instances}"
            )

    def node_of(self, instance: int) -> int:
        return self.placement[instance] if self.placement else 0


@dataclass(frozen=True)
class StreamSpec:
    """A logical stream between two filter ports."""

    name: str
    src: str
    src_port: str
    dst: str
    dst_port: str
    policy: DistributionPolicy = DistributionPolicy.ROUND_ROBIN
    hash_key: str | None = None
    capacity: int = 16

    def __post_init__(self) -> None:
        if self.capacity < 1:
            raise LayoutError(f"stream {self.name!r} capacity must be >= 1")
        if self.policy is DistributionPolicy.HASH and not self.hash_key:
            raise LayoutError(f"stream {self.name!r}: HASH policy needs hash_key")


class Layout:
    """Builder + validator for an application's filter/stream graph."""

    def __init__(self, name: str = "layout"):
        self.name = name
        self.filters: dict[str, FilterSpec] = {}
        self.streams: dict[str, StreamSpec] = {}

    def add_filter(
        self,
        name: str,
        factory: Callable[[], Filter],
        *,
        instances: int = 1,
        replicable: bool = False,
        placement: list[int] | None = None,
    ) -> Layout:
        """Declare a filter; returns self for chaining."""
        if name in self.filters:
            raise LayoutError(f"duplicate filter name {name!r}")
        self.filters[name] = FilterSpec(
            name=name,
            factory=factory,
            instances=instances,
            replicable=replicable,
            placement=tuple(placement) if placement else (),
        )
        return self

    def connect(
        self,
        src: str,
        src_port: str,
        dst: str,
        dst_port: str,
        *,
        policy: DistributionPolicy = DistributionPolicy.ROUND_ROBIN,
        hash_key: str | None = None,
        capacity: int = 16,
        name: str | None = None,
    ) -> Layout:
        """Declare a stream from ``src.src_port`` to ``dst.dst_port``."""
        stream_name = name or f"{src}.{src_port}->{dst}.{dst_port}"
        if stream_name in self.streams:
            raise LayoutError(f"duplicate stream {stream_name!r}")
        self.streams[stream_name] = StreamSpec(
            name=stream_name,
            src=src,
            src_port=src_port,
            dst=dst,
            dst_port=dst_port,
            policy=policy,
            hash_key=hash_key,
            capacity=capacity,
        )
        return self

    # -- validation -----------------------------------------------------------

    def validate(self) -> None:
        """Check stream endpoints against declared filter ports.

        Port declarations are read from a probe instance of each filter
        (class attributes ``inputs`` / ``outputs``).
        """
        probes = {name: spec.factory() for name, spec in self.filters.items()}
        for probe_name, probe in probes.items():
            if not isinstance(probe, Filter):
                raise LayoutError(
                    f"factory of {probe_name!r} returned {type(probe).__name__}, "
                    "not a Filter"
                )
        for stream in self.streams.values():
            if stream.src not in self.filters:
                raise LayoutError(f"stream {stream.name!r}: unknown filter {stream.src!r}")
            if stream.dst not in self.filters:
                raise LayoutError(f"stream {stream.name!r}: unknown filter {stream.dst!r}")
            if stream.src_port not in probes[stream.src].outputs:
                raise LayoutError(
                    f"stream {stream.name!r}: {stream.src!r} has no output port "
                    f"{stream.src_port!r} (has {probes[stream.src].outputs})"
                )
            if stream.dst_port not in probes[stream.dst].inputs:
                raise LayoutError(
                    f"stream {stream.name!r}: {stream.dst!r} has no input port "
                    f"{stream.dst_port!r} (has {probes[stream.dst].inputs})"
                )
        # A port may fan out to several streams only for outputs; an input
        # port fed by several streams merges them, which is allowed.

    def inbound_streams(self, filter_name: str) -> list[StreamSpec]:
        return [s for s in self.streams.values() if s.dst == filter_name]

    def outbound_streams(self, filter_name: str) -> list[StreamSpec]:
        return [s for s in self.streams.values() if s.src == filter_name]
