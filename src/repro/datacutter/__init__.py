"""DataCutter-style filter-stream dataflow middleware.

Computations are *filters* (components) exchanging untyped *data buffers*
over unidirectional logical *streams*; a *layout* is the filter ontology
describing filters, their placement on (logical) nodes, and stream
connections.  Stateless filters may be declared *replicable*, letting the
runtime create transparent copies for data parallelism; pipelined- and
task-parallelism fall out of running filters concurrently.

This reproduction executes layouts with real OS threads
(:class:`~repro.datacutter.runtime.ThreadedRuntime`): every filter instance
is a thread, every stream edge a bounded queue with end-of-stream tracking.
The DOoC engine (:mod:`repro.core`) builds its storage and scheduler
services as filters on top of this substrate, exactly as the paper layers
DOoC on DataCutter.
"""

from repro.datacutter.buffers import END_OF_STREAM, DataBuffer
from repro.datacutter.errors import (
    DataCutterError,
    FilterError,
    LayoutError,
    StreamClosedError,
)
from repro.datacutter.filters import Filter, FilterContext
from repro.datacutter.layout import DistributionPolicy, Layout
from repro.datacutter.runtime import ThreadedRuntime

__all__ = [
    "DataBuffer",
    "END_OF_STREAM",
    "Filter",
    "FilterContext",
    "Layout",
    "DistributionPolicy",
    "ThreadedRuntime",
    "DataCutterError",
    "LayoutError",
    "FilterError",
    "StreamClosedError",
]
